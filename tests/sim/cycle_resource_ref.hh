/**
 * @file
 * The original std::unordered_map CycleResource, kept verbatim as the
 * differential-test reference for the ring-buffer implementation in
 * src/sim/resource.hh. The production ring is bit-identical to this
 * class by construction — including its quirks: reserve()/nextFree()
 * create a map entry for every probed cycle (operator[] inserts even
 * when the cycle is full), and retireBefore() only sweeps once the
 * table holds >= 4096 entries, which is why probes below an erased
 * horizon can observe phantom capacity (load-bearing for the Figure 5
 * unlimited-window models).
 *
 * One fix over the seed version: a min-key watermark skips the sweep
 * when nothing lies below the horizon. The seed re-scanned all >= 4096
 * live entries on every prune call even when the scan could not erase
 * anything; skipping a scan that erases nothing is behavior-preserving.
 */

#ifndef CRYPTARCH_TESTS_CYCLE_RESOURCE_REF_HH
#define CRYPTARCH_TESTS_CYCLE_RESOURCE_REF_HH

#include <cstdint>
#include <unordered_map>

#include "sim/config.hh"
#include "sim/resource.hh" // for sim::Cycle

namespace cryptarch::tests
{

class CycleResourceRef
{
  public:
    explicit CycleResourceRef(unsigned capacity = 0) : cap(capacity) {}

    sim::Cycle
    reserve(sim::Cycle earliest, unsigned units = 1)
    {
        if (cap == sim::unlimited)
            return earliest;
        sim::Cycle cycle = nextFree(earliest, units);
        probe(cycle) += units;
        return cycle;
    }

    /** First free cycle >= @p cycle; every probe — the winner too —
     *  inserts an entry, exactly like the map reserve loop the ring
     *  replaced. */
    sim::Cycle
    nextFree(sim::Cycle cycle, unsigned units = 1)
    {
        if (cap == sim::unlimited)
            return cycle;
        while (probe(cycle) + units > cap)
            cycle++;
        return cycle;
    }

    bool
    canReserve(sim::Cycle cycle, unsigned units = 1) const
    {
        if (cap == sim::unlimited)
            return true;
        auto it = usage.find(cycle);
        return (it == usage.end() ? 0 : it->second) + units <= cap;
    }

    void
    book(sim::Cycle cycle, unsigned units = 1)
    {
        if (cap != sim::unlimited)
            probe(cycle) += units;
    }

    bool
    tryBook(sim::Cycle cycle, unsigned units = 1)
    {
        if (cap == sim::unlimited)
            return true;
        unsigned &used = probe(cycle);
        if (used + units > cap)
            return false;
        used += units;
        return true;
    }

    void
    unbook(sim::Cycle cycle, unsigned units = 1)
    {
        if (cap != sim::unlimited)
            usage[cycle] -= units;
    }

    void
    retireBefore(sim::Cycle horizon)
    {
        if (cap == sim::unlimited)
            return;
        if (usage.size() < 4096)
            return;
        // Min-key watermark: every erase below the horizon has already
        // happened when the watermark caught up, so the full-table
        // re-scan the seed did on every call is provably a no-op.
        if (minKey >= horizon)
            return;
        for (auto it = usage.begin(); it != usage.end();) {
            if (it->first < horizon)
                it = usage.erase(it);
            else
                ++it;
        }
        minKey = horizon;
    }

    bool limited() const { return cap != sim::unlimited; }

    size_t entryCount() const { return usage.size(); }

  private:
    /** operator[] with watermark maintenance: creates the entry, as
     *  the seed's `usage[cycle]` probes did. */
    unsigned &
    probe(sim::Cycle cycle)
    {
        if (usage.empty() || cycle < minKey)
            minKey = cycle;
        return usage[cycle];
    }

    unsigned cap;
    std::unordered_map<sim::Cycle, unsigned> usage;
    sim::Cycle minKey = 0;
};

} // namespace cryptarch::tests

#endif // CRYPTARCH_TESTS_CYCLE_RESOURCE_REF_HH
