/**
 * @file
 * Tests for the stall-cause attribution layer (sim/stall.hh).
 *
 * The per-instruction invariant is exact: every cause other than
 * WindowFull/FetchRedirect tiles the dispatch-to-issue span, so their
 * sum equals (issue - dispatch) for every timeline entry. On top of
 * that, the aggregate counters must reproduce the paper's Figure 5
 * story from a single 4W run: alias ordering and window occupancy
 * matter only for RC4, issue width and FU contention for the rest.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <initializer_list>
#include <string>

#include "driver/workload.hh"
#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "sim/stall.hh"

namespace
{

using namespace cryptarch;
using kernels::KernelVariant;
using sim::MachineConfig;
using sim::SimStats;
using sim::StallCause;

/** Run @p id on @p cfg, recording the timeline of the whole run. */
sim::OooScheduler &
runScheduler(sim::OooScheduler &sched, crypto::CipherId id,
             KernelVariant variant)
{
    driver::Workload w = driver::makeWorkload(id);
    auto build = kernels::buildKernel(id, variant, w.key, w.iv,
                                      driver::session_bytes);
    isa::Machine m;
    build.install(m, kernels::toWordImage(id, w.plaintext));
    m.run(build.program, &sched, 1ull << 32);
    return sched;
}

uint64_t
causeSum(const sim::StallVector &v,
         std::initializer_list<StallCause> causes)
{
    uint64_t sum = 0;
    for (auto c : causes)
        sum += v[static_cast<size_t>(c)];
    return sum;
}

struct InvariantCase
{
    crypto::CipherId cipher;
    MachineConfig model;
};

class StallInvariants : public ::testing::TestWithParam<InvariantCase>
{
};

TEST_P(StallInvariants, CausesTileTheDispatchToIssueSpan)
{
    const auto &[id, cfg] = GetParam();
    sim::OooScheduler sched(cfg);
    sched.recordTimeline(0, 1ull << 30); // the whole run
    runScheduler(sched, id, KernelVariant::BaselineRot);
    auto stats = sched.finish();

    const auto &tl = sched.timelineEntries();
    ASSERT_EQ(tl.size(), stats.instructions);

    sim::StallVector fromTimeline{};
    for (const auto &e : tl) {
        // Exact per-instruction accounting: readiness + resource
        // causes cover every cycle between dispatch and issue, once.
        ASSERT_EQ(sim::dispatchToIssueCycles(e.stall),
                  e.issue - e.dispatch)
            << "seq " << e.seq;
        for (size_t c = 0; c < sim::num_stall_causes; c++)
            fromTimeline[c] += e.stall[c];
    }

    // The aggregate counters are exactly the per-instruction charges...
    for (size_t c = 0; c < sim::num_stall_causes; c++)
        EXPECT_EQ(stats.stallCycles[c], fromTimeline[c])
            << "cause " << sim::stall_cause_names[c];

    // ...and the per-class breakdown partitions them.
    sim::StallVector fromClasses{};
    for (const auto &v : stats.stallByClass)
        for (size_t c = 0; c < sim::num_stall_causes; c++)
            fromClasses[c] += v[c];
    for (size_t c = 0; c < sim::num_stall_causes; c++)
        EXPECT_EQ(stats.stallCycles[c], fromClasses[c])
            << "cause " << sim::stall_cause_names[c];
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, StallInvariants,
    ::testing::Values(
        InvariantCase{crypto::CipherId::RC4, MachineConfig::fourWide()},
        InvariantCase{crypto::CipherId::Rijndael, MachineConfig::fourWide()},
        InvariantCase{crypto::CipherId::TripleDES,
                      MachineConfig::fourWidePlus()},
        InvariantCase{crypto::CipherId::IDEA, MachineConfig::dataflow()},
        InvariantCase{crypto::CipherId::Blowfish,
                      MachineConfig::alpha21264()}),
    [](const ::testing::TestParamInfo<InvariantCase> &info) {
        std::string name = crypto::cipherInfo(info.param.cipher).name
            + "_" + info.param.model.name;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(StallInvariants, DataflowMachineHasNoMachineImposedStalls)
{
    sim::OooScheduler sched(MachineConfig::dataflow());
    runScheduler(sched, crypto::CipherId::RC4, KernelVariant::BaselineRot);
    auto stats = sched.finish();
    // DF disables every constraint; only dependence waits remain.
    EXPECT_EQ(causeSum(stats.stallCycles,
                       {StallCause::StoreAlias, StallCause::SboxVisibility,
                        StallCause::WindowFull, StallCause::FetchRedirect,
                        StallCause::IssueSlot, StallCause::FuAlu,
                        StallCause::FuRot, StallCause::FuMul,
                        StallCause::FuDcache, StallCause::FuSbox}),
              0u);
    EXPECT_GT(causeSum(stats.stallCycles, {StallCause::Operand}), 0u);
}

/** Figure 5 golden shape, measured directly on the 4W machine. */
TEST(StallGolden, Rc4IsAliasAndWindowBound)
{
    sim::OooScheduler sched(MachineConfig::fourWide());
    runScheduler(sched, crypto::CipherId::RC4, KernelVariant::BaselineRot);
    auto stats = sched.finish();

    uint64_t aliasWindow = causeSum(
        stats.stallCycles, {StallCause::StoreAlias, StallCause::WindowFull});
    uint64_t issueFu = causeSum(
        stats.stallCycles,
        {StallCause::IssueSlot, StallCause::FuAlu, StallCause::FuRot,
         StallCause::FuMul, StallCause::FuDcache, StallCause::FuSbox});
    // Alias ordering dominates the machine-imposed stalls (Figure 5:
    // the Alias bar is RC4's deepest), and it is a significant share
    // of all waiting, not a rounding artifact.
    EXPECT_GT(aliasWindow, 5 * issueFu);
    EXPECT_GT(10 * aliasWindow, stats.totalStallCycles());
}

TEST(StallGolden, RijndaelIsIssueAndFuBound)
{
    sim::OooScheduler sched(MachineConfig::fourWide());
    runScheduler(sched, crypto::CipherId::Rijndael,
                 KernelVariant::BaselineRot);
    auto stats = sched.finish();

    uint64_t aliasWindow = causeSum(
        stats.stallCycles, {StallCause::StoreAlias, StallCause::WindowFull});
    uint64_t issueFu = causeSum(
        stats.stallCycles,
        {StallCause::IssueSlot, StallCause::FuAlu, StallCause::FuRot,
         StallCause::FuMul, StallCause::FuDcache, StallCause::FuSbox});
    EXPECT_GT(issueFu, 20 * aliasWindow);
    EXPECT_GT(10 * issueFu, stats.totalStallCycles());
    // Branch redirects never matter for the ciphers (paper Section 3).
    EXPECT_LT(100 * causeSum(stats.stallCycles, {StallCause::FetchRedirect}),
              stats.totalStallCycles());
}

TEST(SboxCacheStats, AccessesAndMissesReachSimStats)
{
    // 4W+ attaches SBox sector caches; the optimized Rijndael kernel
    // drives them. Before the merge fix only hits survived finish().
    sim::OooScheduler sched(MachineConfig::fourWidePlus());
    runScheduler(sched, crypto::CipherId::Rijndael,
                 KernelVariant::Optimized);
    auto stats = sched.finish();

    EXPECT_GT(stats.sboxCacheAccesses, 0u);
    EXPECT_EQ(stats.sboxCacheAccesses,
              stats.sboxCacheHits + stats.sboxCacheMisses);
    EXPECT_FALSE(stats.sboxCaches.empty());
    uint64_t accesses = 0, misses = 0;
    for (const auto &c : stats.sboxCaches) {
        accesses += c.accesses;
        misses += c.misses;
    }
    EXPECT_EQ(accesses, stats.sboxCacheAccesses);
    EXPECT_EQ(misses, stats.sboxCacheMisses);
}

} // namespace
