/**
 * @file
 * Sweep classification of the hardening outcomes: a config the
 * admission layer refuses becomes `rejected`, a watchdog trip becomes
 * `stalled` — in thread and process isolation alike — and the journal
 * resumes both without re-running them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/json.hh"
#include "driver/sweep.hh"
#include "driver/trace.hh"
#include "sim/validate.hh"

namespace
{

using namespace cryptarch;
using driver::CellOutcome;
using driver::SweepCell;
using driver::SweepOptions;
using driver::SweepResult;
using kernels::KernelVariant;
using sim::MachineConfig;

/** RAII validation-policy toggle. */
class ValidationGuard
{
  public:
    explicit ValidationGuard(bool on) : prev(sim::configValidationEnabled())
    {
        sim::setConfigValidation(on);
    }
    ~ValidationGuard() { sim::setConfigValidation(prev); }

  private:
    bool prev;
};

MachineConfig
unsatisfiableMulPool()
{
    MachineConfig cfg = MachineConfig::fourWide();
    cfg.name = "4W-mul1";
    cfg.mulHalfSlots = 1;
    return cfg;
}

/**
 * One healthy cell, one cell on a config the admission layer refuses.
 * IDEA's baseline kernel carries 64-bit multiplies, so with validation
 * disabled the same grid exercises the watchdog instead.
 */
std::vector<SweepCell>
mixedGrid()
{
    return {
        {crypto::CipherId::IDEA, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), 512},
        {crypto::CipherId::IDEA, KernelVariant::BaselineRot,
         unsatisfiableMulPool(), 512},
    };
}

SweepOptions
processOptions()
{
    SweepOptions opts;
    opts.isolation = driver::SweepIsolation::Process;
    return opts;
}

std::string
benchJsonString(const std::vector<SweepResult> &results,
                const std::string &tag)
{
    std::string path = ::testing::TempDir() + "BENCH_oc_" + tag + ".json";
    driver::writeBenchJson(path, "outcomes", results);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());
    return buf.str();
}

void
expectRejectedGrid(const std::vector<SweepResult> &results)
{
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok()) << results[0].message;
    EXPECT_GT(results[0].stats.cycles, 0u);
    EXPECT_EQ(results[1].outcome, CellOutcome::Rejected);
    EXPECT_NE(results[1].message.find("unsatisfiable-fu-pool"),
              std::string::npos)
        << results[1].message;
    EXPECT_EQ(results[1].stats.cycles, 0u);
}

void
expectStalledGrid(const std::vector<SweepResult> &results)
{
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok()) << results[0].message;
    EXPECT_EQ(results[1].outcome, CellOutcome::Stalled);
    EXPECT_NE(results[1].message.find("no forward progress"),
              std::string::npos)
        << results[1].message;
    EXPECT_EQ(results[1].stats.cycles, 0u);
}

TEST(Outcomes, RejectedInThreadAndProcessModes)
{
    auto cells = mixedGrid();
    auto threadResults = driver::runCells(cells, SweepOptions{});
    expectRejectedGrid(threadResults);

    // Process isolation classifies identically: ConfigRejected is
    // deterministic, so the worker reports it typed (no retry, no
    // crash) and the JSON matches the thread run byte for byte.
    auto processResults = driver::runCells(cells, processOptions());
    expectRejectedGrid(processResults);
    EXPECT_EQ(benchJsonString(threadResults, "thread"),
              benchJsonString(processResults, "process"));
}

TEST(Outcomes, StalledInThreadAndProcessModes)
{
    // With admission disabled the degenerate config reaches the
    // scheduler and the forward-progress watchdog converts the
    // livelock into the `stalled` outcome. Worker processes fork from
    // this parent, so the policy setter propagates to process mode.
    ValidationGuard validation(false);
    auto cells = mixedGrid();
    auto threadResults = driver::runCells(cells, SweepOptions{});
    expectStalledGrid(threadResults);

    auto processResults = driver::runCells(cells, processOptions());
    expectStalledGrid(processResults);
    EXPECT_EQ(benchJsonString(threadResults, "thread"),
              benchJsonString(processResults, "process"));
}

TEST(Outcomes, JournalResumeSkipsRejectedCells)
{
    auto cells = mixedGrid();
    const std::string path =
        ::testing::TempDir() + "journal_rejected.bin";
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;
    auto first = driver::runCells(cells, opts);
    expectRejectedGrid(first);

    // A rejected outcome is journaled like any terminal result: the
    // resumed run replays it from the record instead of re-validating.
    const uint64_t before = driver::functionalRuns();
    auto second = driver::runCells(cells, opts);
    EXPECT_EQ(driver::functionalRuns() - before, 0u);
    expectRejectedGrid(second);
    EXPECT_EQ(benchJsonString(first, "jfirst"),
              benchJsonString(second, "jsecond"));
    std::remove(path.c_str());
}

TEST(Outcomes, JournalResumeSkipsStalledCells)
{
    ValidationGuard validation(false);
    auto cells = mixedGrid();
    const std::string path =
        ::testing::TempDir() + "journal_stalled.bin";
    std::remove(path.c_str());

    SweepOptions opts;
    opts.isolation = driver::SweepIsolation::Process;
    opts.journalPath = path;
    auto first = driver::runCells(cells, opts);
    expectStalledGrid(first);

    // Resume under thread isolation so the in-process functionalRuns
    // counter can witness the skip — and prove the journal record
    // format carries the new outcome across isolation modes.
    SweepOptions resumeOpts;
    resumeOpts.journalPath = path;
    const uint64_t before = driver::functionalRuns();
    auto second = driver::runCells(cells, resumeOpts);
    EXPECT_EQ(driver::functionalRuns() - before, 0u);
    expectStalledGrid(second);
    EXPECT_EQ(benchJsonString(first, "sfirst"),
              benchJsonString(second, "ssecond"));
    std::remove(path.c_str());
}

TEST(Outcomes, BenchJsonCountsTheNewOutcomes)
{
    auto cells = mixedGrid();
    auto results = driver::runCells(cells, SweepOptions{});
    const std::string json = benchJsonString(results, "counts");
    EXPECT_NE(json.find("\"schema\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"rejected\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"stalled\": 0"), std::string::npos) << json;
    EXPECT_NE(json.find("\"outcome\": \"rejected\""), std::string::npos)
        << json;
}

} // namespace
