/**
 * @file
 * Round-trip fidelity of the packed trace encoding:
 * decode(encode(stream)) must equal the original stream field by
 * field, both for real kernel traces captured from the functional
 * Machine and for adversarial synthetic streams exercising every
 * escape path (wide addresses, nextPc exceptions, zero/nonzero
 * results, every access size).
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "driver/trace.hh"
#include "isa/packed_trace.hh"
#include "driver/workload.hh"
#include "kernels/kernel.hh"

namespace
{

using namespace cryptarch;
using driver::PackedTrace;

void
expectInstEqual(const isa::DynInst &a, const isa::DynInst &b, size_t i)
{
    EXPECT_EQ(a.seq, b.seq) << "inst " << i;
    EXPECT_EQ(a.pc, b.pc) << "inst " << i;
    EXPECT_EQ(a.op, b.op) << "inst " << i;
    EXPECT_EQ(a.cls, b.cls) << "inst " << i;
    EXPECT_EQ(a.numSrcs, b.numSrcs) << "inst " << i;
    EXPECT_EQ(a.srcs, b.srcs) << "inst " << i;
    EXPECT_EQ(a.dest, b.dest) << "inst " << i;
    EXPECT_EQ(a.isLoad, b.isLoad) << "inst " << i;
    EXPECT_EQ(a.isStore, b.isStore) << "inst " << i;
    EXPECT_EQ(a.addr, b.addr) << "inst " << i;
    EXPECT_EQ(a.size, b.size) << "inst " << i;
    EXPECT_EQ(a.addrSrc, b.addrSrc) << "inst " << i;
    EXPECT_EQ(a.branch, b.branch) << "inst " << i;
    EXPECT_EQ(a.taken, b.taken) << "inst " << i;
    EXPECT_EQ(a.nextPc, b.nextPc) << "inst " << i;
    EXPECT_EQ(a.tableId, b.tableId) << "inst " << i;
    EXPECT_EQ(a.aliased, b.aliased) << "inst " << i;
    EXPECT_EQ(a.result, b.result) << "inst " << i;
}

/** TraceSink capturing the raw DynInst stream. */
struct VectorSink : isa::TraceSink
{
    std::vector<isa::DynInst> insts;
    void emit(const isa::DynInst &inst) override { insts.push_back(inst); }
};

TEST(PackedTrace, RoundTripsRealKernelStream)
{
    // Capture one raw stream straight off the Machine, pack it with
    // results kept, and compare the decode field by field.
    driver::Workload w = driver::makeWorkload(crypto::CipherId::Rijndael);
    auto build = kernels::buildKernel(crypto::CipherId::Rijndael,
                                      kernels::KernelVariant::Optimized,
                                      w.key, w.iv, driver::session_bytes);
    isa::Machine m;
    build.install(m, kernels::toWordImage(crypto::CipherId::Rijndael,
                                          w.plaintext));
    VectorSink raw;
    m.run(build.program, &raw, 1ull << 32);
    ASSERT_FALSE(raw.insts.empty());

    PackedTrace packed;
    packed.reserve(raw.insts.size());
    for (const auto &inst : raw.insts)
        packed.append(inst, /*keepResult=*/true);
    ASSERT_EQ(packed.size(), raw.insts.size());

    auto r = packed.reader();
    for (size_t i = 0; i < raw.insts.size(); i++) {
        ASSERT_FALSE(r.done());
        expectInstEqual(raw.insts[i], r.next(), i);
    }
    EXPECT_TRUE(r.done());
}

TEST(PackedTrace, RoundTripsSyntheticEscapePaths)
{
    std::mt19937_64 rng(0xBEEF);
    const uint8_t sizes[] = {0, 1, 2, 4, 8};
    std::vector<isa::DynInst> stream;
    for (size_t i = 0; i < 4096; i++) {
        isa::DynInst d;
        d.seq = i;
        d.pc = static_cast<uint32_t>(rng() & 0xFFFF);
        d.op = static_cast<isa::Opcode>(rng() % 8);
        d.cls = static_cast<isa::OpClass>(rng() % isa::num_op_classes);
        d.numSrcs = rng() % 4;
        d.srcs = {static_cast<uint8_t>(rng() & 63),
                  static_cast<uint8_t>(rng() & 63),
                  static_cast<uint8_t>(rng() & 63)};
        d.dest = rng() & 63;
        d.isLoad = rng() & 1;
        d.isStore = !d.isLoad && (rng() & 1);
        switch (rng() % 3) {
        case 0:
            d.addr = 0;
            break;
        case 1:
            d.addr = rng() & 0xFFFFFFFFull; // 32-bit fast path
            break;
        case 2:
            d.addr = rng() | (1ull << 40); // wide escape
            break;
        }
        d.size = sizes[rng() % 5];
        d.addrSrc = rng() & 63;
        d.branch = rng() & 1;
        d.taken = d.branch && (rng() & 1);
        // Mostly sequential successors, sometimes an exception.
        d.nextPc = (rng() % 4) ? d.pc + 1
                               : static_cast<uint32_t>(rng() & 0xFFFF);
        d.tableId = rng() & 7;
        d.aliased = rng() & 1;
        d.result = (rng() % 3) ? rng() : 0; // zero sometimes
        stream.push_back(d);
    }

    PackedTrace packed;
    for (const auto &inst : stream)
        packed.append(inst, /*keepResult=*/true);

    auto r = packed.reader();
    for (size_t i = 0; i < stream.size(); i++)
        expectInstEqual(stream[i], r.next(), i);
    EXPECT_TRUE(r.done());

    // Independent readers decode independently.
    auto r2 = packed.reader();
    expectInstEqual(stream[0], r2.next(), 0);
}

TEST(PackedTrace, DropResultModeZeroesResultsOnly)
{
    isa::DynInst d;
    d.seq = 0;
    d.pc = 7;
    d.result = 0xDEADBEEF;
    d.nextPc = 8;
    PackedTrace packed;
    packed.append(d, /*keepResult=*/false);
    auto out = packed.reader().next();
    EXPECT_EQ(out.result, 0u);
    out.result = d.result;
    expectInstEqual(d, out, 0);
}

TEST(PackedTrace, PackedBytesBeatDynInstSeveralFold)
{
    // The whole point: a recorded kernel trace must be several times
    // smaller than the 56-byte-per-DynInst representation it replaced.
    auto trace = driver::recordKernelTrace(crypto::CipherId::RC4,
                                           kernels::KernelVariant::Optimized);
    ASSERT_GT(trace.instructions(), 0u);
    const size_t rawBytes = trace.instructions() * sizeof(isa::DynInst);
    EXPECT_LT(trace.storedBytes() * 3, rawBytes)
        << "stored " << trace.storedBytes() << " vs raw " << rawBytes;
}

TEST(PackedTrace, ClearEmptiesEverything)
{
    isa::DynInst d;
    PackedTrace packed;
    packed.append(d);
    EXPECT_EQ(packed.size(), 1u);
    EXPECT_GT(packed.packedBytes(), 0u);
    packed.clear();
    EXPECT_TRUE(packed.empty());
    auto r = packed.reader();
    EXPECT_TRUE(r.done());
}

} // namespace
