/**
 * @file
 * Bench driver tests: the parallel sweep runner interprets each
 * (cipher, variant) kernel functionally exactly once per run — for
 * exactly the grids the figure benches execute — collects results in
 * deterministic order regardless of thread count, and emits the
 * BENCH_*.json schema.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "driver/grids.hh"
#include "driver/json.hh"
#include "driver/sweep.hh"
#include "driver/trace.hh"

namespace
{

using namespace cryptarch;
using driver::SweepCell;
using driver::SweepResult;
using driver::SweepSpec;
using kernels::KernelVariant;
using sim::MachineConfig;

/** Distinct (cipher, variant, bytes) kernels in a cell list. */
size_t
kernelCount(const std::vector<SweepCell> &cells)
{
    std::set<std::tuple<crypto::CipherId, KernelVariant, size_t>> keys;
    for (const auto &c : cells)
        keys.insert({c.cipher, c.variant, c.bytes});
    return keys.size();
}

std::vector<SweepCell>
gridCells(const SweepSpec &spec)
{
    std::vector<SweepCell> cells;
    for (auto cipher : spec.ciphers)
        for (auto variant : spec.variants)
            for (const auto &model : spec.models)
                cells.push_back({cipher, variant, model, spec.bytes});
    return cells;
}

TEST(Driver, Fig04GridInterpretsEachKernelOnce)
{
    auto spec = driver::fig04Spec();
    uint64_t before = driver::functionalRuns();
    auto results = driver::runSweep(spec);
    uint64_t runs = driver::functionalRuns() - before;
    // One functional pass per (cipher, variant) — not per model.
    EXPECT_EQ(runs, spec.ciphers.size() * spec.variants.size());
    EXPECT_EQ(results.size(), spec.ciphers.size() * spec.variants.size()
                                  * spec.models.size());

    // The Figure 4 "21264-class" column is a real configuration, not a
    // reprint of the 4W column: the two must disagree somewhere.
    bool differs = false;
    for (auto id : spec.ciphers) {
        const auto &a21 = driver::findResult(
            results, id, KernelVariant::BaselineRot, "21264");
        const auto &w4 = driver::findResult(
            results, id, KernelVariant::BaselineRot, "4W");
        EXPECT_EQ(a21.stats.instructions, w4.stats.instructions);
        if (a21.stats.cycles != w4.stats.cycles)
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Driver, Fig10GridInterpretsEachKernelOnce)
{
    auto cells = driver::fig10Cells();
    uint64_t before = driver::functionalRuns();
    auto results = driver::runCells(cells);
    uint64_t runs = driver::functionalRuns() - before;
    EXPECT_EQ(runs, kernelCount(cells));
    EXPECT_EQ(results.size(), cells.size());
}

TEST(Driver, Tab02GridInterpretsEachKernelOnce)
{
    auto spec = driver::tab02Spec();
    uint64_t before = driver::functionalRuns();
    auto results = driver::runSweep(spec);
    uint64_t runs = driver::functionalRuns() - before;
    EXPECT_EQ(runs, spec.ciphers.size() * spec.variants.size());
    EXPECT_EQ(results.size(), spec.ciphers.size() * spec.variants.size()
                                  * spec.models.size());
}

TEST(Driver, ResultsAreOrderedAndThreadCountInvariant)
{
    SweepSpec spec;
    spec.ciphers = {crypto::CipherId::RC4, crypto::CipherId::Blowfish};
    spec.variants = {KernelVariant::BaselineRot};
    spec.models = {MachineConfig::fourWide(), MachineConfig::dataflow()};

    spec.threads = 1;
    auto serial = driver::runSweep(spec);
    spec.threads = 8;
    auto parallel = driver::runSweep(spec);

    ASSERT_EQ(serial.size(), 4u);
    ASSERT_EQ(parallel.size(), serial.size());

    // Grid order: cipher-major, then variant, then model.
    auto cells = gridCells(spec);
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].cipher, cells[i].cipher);
        EXPECT_EQ(serial[i].variant, cells[i].variant);
        EXPECT_EQ(serial[i].model, cells[i].model.name);
    }

    // Bit-identical stats no matter how many workers ran the sweep.
    for (size_t i = 0; i < serial.size(); i++) {
        EXPECT_EQ(serial[i].model, parallel[i].model);
        EXPECT_EQ(serial[i].stats.cycles, parallel[i].stats.cycles);
        EXPECT_EQ(serial[i].stats.instructions,
                  parallel[i].stats.instructions);
        EXPECT_EQ(serial[i].stats.mispredicts,
                  parallel[i].stats.mispredicts);
        EXPECT_EQ(serial[i].stats.l1.misses, parallel[i].stats.l1.misses);
    }
}

TEST(Driver, FindResultThrowsOnMissingCell)
{
    std::vector<SweepResult> results;
    EXPECT_THROW(driver::findResult(results, crypto::CipherId::RC4,
                                    KernelVariant::BaselineRot, "4W"),
                 std::out_of_range);
}

TEST(Driver, JsonEmitterWritesSchema)
{
    SweepSpec spec;
    spec.ciphers = {crypto::CipherId::RC4};
    spec.variants = {KernelVariant::BaselineRot};
    spec.models = {MachineConfig::fourWide()};
    auto results = driver::runSweep(spec);

    std::string path = ::testing::TempDir() + "BENCH_test.json";
    driver::writeBenchJson(path, "test", results);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();

    EXPECT_NE(json.find("\"bench\": \"test\""), std::string::npos);
    EXPECT_NE(json.find("\"schema\": 5"), std::string::npos);
    // Schema v4: top-level outcome counts (every outcome key, zeros
    // included), worker attribution only on host-failed cells. v5
    // appended the hardening outcomes to the count object.
    EXPECT_NE(json.find("\"outcomes\": {\"ok\": 1, \"trapped\": 0, "
                        "\"verify_failed\": 0, \"error\": 0, "
                        "\"crashed\": 0, \"timed_out\": 0, "
                        "\"rejected\": 0, \"stalled\": 0}"),
              std::string::npos);
    EXPECT_EQ(json.find("\"worker\": "), std::string::npos);
    // Schema v3: fail-soft outcome on every result, message only on
    // failed cells.
    EXPECT_NE(json.find("\"outcome\": \"ok\""), std::string::npos);
    EXPECT_EQ(json.find("\"message\": "), std::string::npos);
    EXPECT_NE(json.find("\"cipher\": \"RC4\""), std::string::npos);
    EXPECT_NE(json.find("\"model\": \"4W\""), std::string::npos);
    EXPECT_NE(json.find("\"session_bytes\": 4096"), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": "), std::string::npos);
    EXPECT_NE(json.find("\"mispredicts\": "), std::string::npos);
    EXPECT_NE(json.find("\"l1\": {\"accesses\": "), std::string::npos);
    // Schema v2: merged SBox-cache stats, named per-class counts from
    // the OpClass name table, and the stall-attribution counters.
    EXPECT_NE(json.find("\"sbox_cache_accesses\": "), std::string::npos);
    EXPECT_NE(json.find("\"sbox_cache_misses\": "), std::string::npos);
    EXPECT_NE(json.find("\"class_counts\": {\"Nop\": "), std::string::npos);
    EXPECT_NE(json.find("\"SboxSync\": "), std::string::npos);
    EXPECT_NE(json.find("\"stall_cycles\": {\"operand\": "),
              std::string::npos);
    EXPECT_NE(json.find("\"stall_by_class\": {"), std::string::npos);
    EXPECT_NE(json.find("\"alias\": "), std::string::npos);

    // The emitted cycles match the sweep's stats.
    std::ostringstream expect;
    expect << "\"cycles\": " << results[0].stats.cycles;
    EXPECT_NE(json.find(expect.str()), std::string::npos);
}

TEST(Driver, JsonEscapesControlAndHighBitBytes)
{
    // Golden escape coverage, including bytes >= 0x80: a signed char
    // promoted through the %x varargs conversion used to sign-extend
    // 0x80 into "￿ff80". Every non-printable byte must come out
    // as exactly one \u00xx escape.
    const std::string nasty = std::string("A\t\"\\") + '\x1f' + '\x7f'
        + '\x80' + '\xff' + 'Z';
    std::string path = ::testing::TempDir() + "BENCH_escape.json";
    driver::writeBenchJson(path, nasty, {});

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string json = buf.str();

    EXPECT_NE(json.find("\"bench\": "
                        "\"A\\t\\\"\\\\\\u001f\\u007f\\u0080\\u00ffZ\""),
              std::string::npos)
        << json;
    EXPECT_EQ(json.find("ffff"), std::string::npos)
        << "sign-extended escape leaked: " << json;
}

TEST(Driver, FailSoftSweepKeepsHealthyCells)
{
    // Three cells: the middle one cannot even build (Rijndael session
    // not a block multiple), the last one traps at install time (the
    // session image exceeds machine memory). Neither may take down the
    // healthy first cell, and runCells must not throw.
    std::vector<SweepCell> cells = {
        {crypto::CipherId::RC4, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), 1024},
        {crypto::CipherId::Rijndael, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), 100},
        {crypto::CipherId::RC4, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), size_t{1} << 23},
    };
    auto results = driver::runCells(cells);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_TRUE(results[0].ok());
    EXPECT_EQ(results[0].outcome, driver::CellOutcome::Ok);
    EXPECT_GT(results[0].stats.cycles, 0u);
    EXPECT_TRUE(results[0].message.empty());

    EXPECT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].outcome, driver::CellOutcome::Error);
    EXPECT_FALSE(results[1].message.empty());
    // Failed cells keep their grid coordinates (zeroed stats).
    EXPECT_EQ(results[1].cipher, crypto::CipherId::Rijndael);
    EXPECT_EQ(results[1].bytes, 100u);
    EXPECT_EQ(results[1].stats.cycles, 0u);

    EXPECT_FALSE(results[2].ok());
    EXPECT_EQ(results[2].outcome, driver::CellOutcome::Trapped);
    EXPECT_NE(results[2].message.find("oob"), std::string::npos)
        << results[2].message;
}

TEST(Driver, FailedCellsSerializeOutcomeAndMessage)
{
    std::vector<SweepCell> cells = {
        {crypto::CipherId::Rijndael, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), 100},
    };
    auto results = driver::runCells(cells);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_FALSE(results[0].ok());

    std::string path = ::testing::TempDir() + "BENCH_failsoft.json";
    driver::writeBenchJson(path, "failsoft", results);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::string json = buf.str();
    EXPECT_NE(json.find("\"outcome\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"message\": \""), std::string::npos);
}

TEST(Driver, MixedSessionLengthsKeySeparateTraces)
{
    // Cells that differ only in session length must NOT share a trace:
    // two kernels, two functional passes, different dynamic lengths.
    std::vector<SweepCell> cells = {
        {crypto::CipherId::RC4, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), 1024},
        {crypto::CipherId::RC4, KernelVariant::BaselineRot,
         MachineConfig::fourWide(), 2048},
    };
    uint64_t before = driver::functionalRuns();
    auto results = driver::runCells(cells);
    EXPECT_EQ(driver::functionalRuns() - before, 2u);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_LT(results[0].stats.instructions, results[1].stats.instructions);
    EXPECT_EQ(results[0].bytes, 1024u);
    EXPECT_EQ(results[1].bytes, 2048u);
}

} // namespace
