/**
 * @file
 * Packed-trace stream integrity: serialize/deserialize round-trips
 * bit-exactly, and every malformed stream — truncated, bad magic, bad
 * version, corrupted payload, inconsistent tables — is rejected with a
 * typed TraceFormatError. The fuzz case flips random bytes and bits in
 * real kernel trace streams and asserts the reader never crashes or
 * accepts silently (the ASan/UBSan CI job runs these same cases).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "driver/trace.hh"
#include "isa/packed_trace.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using cryptarch::isa::PackedTrace;
using cryptarch::isa::TraceErrorKind;
using cryptarch::isa::TraceFormatError;
using cryptarch::util::Xorshift64;

/** A real kernel trace stream to corrupt. */
std::vector<uint8_t>
kernelStream(size_t bytes = 512)
{
    auto trace = driver::recordKernelTrace(
        crypto::CipherId::RC4, kernels::KernelVariant::Optimized, bytes);
    return trace.toPacked().serialize();
}

/** Decode every instruction of @p t (drives the Reader bounds). */
size_t
drain(const PackedTrace &t)
{
    size_t n = 0;
    for (auto r = t.reader(); !r.done(); r.next())
        n++;
    return n;
}

TEST(TraceIntegrity, SerializeRoundTripsBitExactly)
{
    auto bytes = kernelStream();
    auto t = PackedTrace::deserialize(bytes);
    EXPECT_GT(t.size(), 0u);
    EXPECT_EQ(drain(t), t.size());
    // Round-trip: re-serializing the parsed trace reproduces the
    // stream byte for byte.
    EXPECT_EQ(t.serialize(), bytes);
}

TEST(TraceIntegrity, ReplayFromDeserializedTraceMatchesOriginal)
{
    auto trace = driver::recordKernelTrace(
        crypto::CipherId::Rijndael, kernels::KernelVariant::Optimized,
        512);
    const PackedTrace packed = trace.toPacked();
    auto copy = PackedTrace::deserialize(packed.serialize());
    auto ra = packed.reader();
    auto rb = copy.reader();
    while (!ra.done() && !rb.done()) {
        auto a = ra.next();
        auto b = rb.next();
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.op, b.op);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.nextPc, b.nextPc);
    }
    EXPECT_TRUE(ra.done());
    EXPECT_TRUE(rb.done());
}

TEST(TraceIntegrity, EmptyTraceRoundTrips)
{
    PackedTrace empty;
    auto bytes = empty.serialize();
    auto t = PackedTrace::deserialize(bytes);
    EXPECT_EQ(t.size(), 0u);
}

TEST(TraceIntegrity, RejectsBadMagic)
{
    auto bytes = kernelStream();
    bytes[0] = 'X';
    try {
        PackedTrace::deserialize(bytes);
        FAIL() << "bad magic accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::BadMagic);
    }
}

TEST(TraceIntegrity, RejectsBadVersion)
{
    auto bytes = kernelStream();
    bytes[4] = 0xFF;
    try {
        PackedTrace::deserialize(bytes);
        FAIL() << "bad version accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::BadVersion);
    }
}

TEST(TraceIntegrity, RejectsTruncation)
{
    auto bytes = kernelStream();
    // Every truncation length, from empty to one-byte-short, rejects
    // with a typed error (coarse steps keep the loop fast, the
    // boundary cases are explicit).
    for (size_t keep : {size_t{0}, size_t{3}, size_t{55}, size_t{56},
                        bytes.size() / 2, bytes.size() - 1}) {
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
        EXPECT_THROW(PackedTrace::deserialize(cut), TraceFormatError)
            << "accepted " << keep << " of " << bytes.size() << " bytes";
    }
}

TEST(TraceIntegrity, RejectsPayloadCorruption)
{
    auto bytes = kernelStream();
    auto corrupt = bytes;
    corrupt[bytes.size() / 2] ^= 0x40;
    try {
        PackedTrace::deserialize(corrupt);
        FAIL() << "corrupted payload accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::BadChecksum);
    }
}

TEST(TraceIntegrity, RejectsChecksumFieldCorruption)
{
    auto bytes = kernelStream();
    bytes[48] ^= 0x01; // the stored checksum itself
    EXPECT_THROW(PackedTrace::deserialize(bytes), TraceFormatError);
}

TEST(TraceIntegrity, FuzzedCorruptionNeverCrashesReader)
{
    // Randomized single- and multi-bit corruption over the whole
    // stream: the reader must reject (typed error) or, never, crash.
    // Accepting is impossible — the checksum covers every payload byte
    // and each header field is semantically checked.
    auto bytes = kernelStream(256);
    Xorshift64 rng(0xF022);
    for (int iter = 0; iter < 500; iter++) {
        auto corrupt = bytes;
        const int flips = 1 + static_cast<int>(rng.next() % 4);
        for (int f = 0; f < flips; f++)
            corrupt[rng.next() % corrupt.size()] ^=
                static_cast<uint8_t>(1u << (rng.next() % 8));
        if (corrupt == bytes)
            continue; // even number of identical flips canceled out
        try {
            auto t = PackedTrace::deserialize(corrupt);
            drain(t);
            FAIL() << "corrupted stream accepted at iter " << iter;
        } catch (const TraceFormatError &) {
            // expected: typed rejection, no UB
        }
    }
}

TEST(TraceIntegrity, FuzzedTruncationNeverCrashesReader)
{
    auto bytes = kernelStream(256);
    Xorshift64 rng(0x7A11);
    for (int iter = 0; iter < 200; iter++) {
        const size_t keep = rng.next() % bytes.size();
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
        EXPECT_THROW(PackedTrace::deserialize(cut), TraceFormatError);
    }
}

} // namespace
