/**
 * @file
 * Driver-level execution-backend policy tests: the differential
 * adoption gate runs once per (cipher, variant, direction), the
 * threaded backend's recorded product is byte-identical to the
 * interpreter's, and RecordTiming's phase fields are disjoint splits
 * of the call's wall clock (the per-backend record_seconds columns in
 * BENCH_simspeed.json compare executors, so the shared phases must
 * never leak into recordSeconds).
 */

#include <gtest/gtest.h>

#include <chrono>

#include "driver/trace.hh"
#include "driver/workload.hh"

namespace
{

using namespace cryptarch;

/** Restore process-wide backend/compression policy after each test. */
class ExecBackendPolicy : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        saved_sel_ = driver::execBackendSelection();
        saved_comp_ = driver::traceCompression();
        driver::resetExecBackendGate();
    }

    void
    TearDown() override
    {
        driver::setExecBackendSelection(saved_sel_);
        driver::setTraceCompression(saved_comp_);
        driver::resetExecBackendGate();
    }

  private:
    driver::ExecBackendSelection saved_sel_;
    driver::TraceCompression saved_comp_;
};

constexpr auto cipher = crypto::CipherId::Blowfish;
constexpr auto variant = kernels::KernelVariant::Optimized;
constexpr auto dir = kernels::KernelDirection::Encrypt;
constexpr size_t bytes = 512;

TEST_F(ExecBackendPolicy, SelectionRoundTrips)
{
    driver::setExecBackendSelection(
        driver::ExecBackendSelection::Interpreter);
    EXPECT_EQ(driver::execBackendSelection(),
              driver::ExecBackendSelection::Interpreter);
    driver::setExecBackendSelection(driver::ExecBackendSelection::Threaded);
    EXPECT_EQ(driver::execBackendSelection(),
              driver::ExecBackendSelection::Threaded);
}

TEST_F(ExecBackendPolicy, GateRunsOncePerKernelThenSticks)
{
    driver::setExecBackendSelection(driver::ExecBackendSelection::Threaded);

    const uint64_t checks0 = driver::backendGateChecks();
    const uint64_t threaded0 = driver::threadedRecordings();

    driver::recordKernelTrace(cipher, variant, bytes, dir);
    EXPECT_EQ(driver::backendGateChecks(), checks0 + 1);
    EXPECT_EQ(driver::threadedRecordings(), threaded0 + 1);

    // Steady state: same kernel records threaded with no new gate run.
    driver::recordKernelTrace(cipher, variant, bytes, dir);
    EXPECT_EQ(driver::backendGateChecks(), checks0 + 1);
    EXPECT_EQ(driver::threadedRecordings(), threaded0 + 2);

    // A different kernel is gated separately.
    driver::recordKernelTrace(cipher, variant, bytes,
                              kernels::KernelDirection::Decrypt);
    EXPECT_EQ(driver::backendGateChecks(), checks0 + 2);

    // Forgetting verdicts re-gates on next use.
    driver::resetExecBackendGate();
    driver::recordKernelTrace(cipher, variant, bytes, dir);
    EXPECT_EQ(driver::backendGateChecks(), checks0 + 3);
}

TEST_F(ExecBackendPolicy, AutoSelectionRecordsThreaded)
{
    driver::setExecBackendSelection(driver::ExecBackendSelection::Auto);
    const uint64_t threaded0 = driver::threadedRecordings();
    const uint64_t fallbacks0 = driver::backendGateFallbacks();
    driver::recordKernelTrace(cipher, variant, bytes, dir);
    EXPECT_EQ(driver::threadedRecordings(), threaded0 + 1);
    EXPECT_EQ(driver::backendGateFallbacks(), fallbacks0)
        << "threaded stream diverged from the interpreter";
}

TEST_F(ExecBackendPolicy, InterpreterSelectionNeverGates)
{
    driver::setExecBackendSelection(
        driver::ExecBackendSelection::Interpreter);
    const uint64_t checks0 = driver::backendGateChecks();
    const uint64_t threaded0 = driver::threadedRecordings();
    driver::recordKernelTrace(cipher, variant, bytes, dir);
    EXPECT_EQ(driver::backendGateChecks(), checks0);
    EXPECT_EQ(driver::threadedRecordings(), threaded0);
}

/**
 * The byte-identity guarantee CI enforces on whole BENCH files,
 * locally and per kernel: interpreter-selected, gate-adopted, and
 * steady-state threaded recordings serialize to the same packed bytes.
 */
TEST_F(ExecBackendPolicy, BackendsProduceByteIdenticalTraces)
{
    driver::setTraceCompression(driver::TraceCompression::Off);

    driver::setExecBackendSelection(
        driver::ExecBackendSelection::Interpreter);
    auto ref = driver::recordKernelTrace(cipher, variant, bytes, dir);

    driver::setExecBackendSelection(driver::ExecBackendSelection::Threaded);
    auto gated = driver::recordKernelTrace(cipher, variant, bytes, dir);
    auto steady = driver::recordKernelTrace(cipher, variant, bytes, dir);

    const auto want = ref.toPacked().serialize();
    EXPECT_EQ(gated.toPacked().serialize(), want);
    EXPECT_EQ(steady.toPacked().serialize(), want);
}

/** Compression adoption must not depend on which backend recorded. */
TEST_F(ExecBackendPolicy, CompressionOutcomeIsBackendInvariant)
{
    driver::setTraceCompression(driver::TraceCompression::Auto);

    driver::setExecBackendSelection(
        driver::ExecBackendSelection::Interpreter);
    auto a = driver::recordKernelTrace(cipher, variant, bytes, dir);

    driver::setExecBackendSelection(driver::ExecBackendSelection::Threaded);
    driver::recordKernelTrace(cipher, variant, bytes, dir); // gate
    auto b = driver::recordKernelTrace(cipher, variant, bytes, dir);

    EXPECT_EQ(a.isCompressed(), b.isCompressed());
    EXPECT_EQ(a.compressOutcome(), b.compressOutcome());
    EXPECT_EQ(a.storedBytes(), b.storedBytes());
}

/**
 * RecordTiming regression: the six fields are disjoint phases, so
 * their sum can never exceed the call's wall clock, and the
 * decode/gate splits appear exactly when the path that owns them ran.
 * (decodeSeconds was split out of recordSeconds when per-backend
 * record columns were added — recordSeconds is the producing run
 * only.)
 */
TEST_F(ExecBackendPolicy, TimingPhasesAreDisjointSplitsOfWallClock)
{
    auto timed = [](driver::RecordTiming &t) {
        const auto t0 = std::chrono::steady_clock::now();
        driver::recordKernelTrace(cipher, variant, bytes, dir, &t);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    driver::setExecBackendSelection(
        driver::ExecBackendSelection::Interpreter);
    driver::RecordTiming ti;
    const double wall_i = timed(ti);
    EXPECT_GT(ti.setupSeconds, 0.0);
    EXPECT_GT(ti.recordSeconds, 0.0);
    EXPECT_EQ(ti.decodeSeconds, 0.0);
    EXPECT_EQ(ti.gateSeconds, 0.0);
    EXPECT_GT(ti.verifySeconds, 0.0);
    EXPECT_GE(ti.compressSeconds, 0.0);
    EXPECT_LE(ti.setupSeconds + ti.recordSeconds + ti.decodeSeconds
                  + ti.gateSeconds + ti.verifySeconds + ti.compressSeconds,
              wall_i);

    driver::setExecBackendSelection(driver::ExecBackendSelection::Threaded);
    driver::RecordTiming tg; // gated first use
    const double wall_g = timed(tg);
    EXPECT_GT(tg.recordSeconds, 0.0);
    EXPECT_GT(tg.decodeSeconds, 0.0);
    EXPECT_GT(tg.gateSeconds, 0.0);
    EXPECT_LE(tg.setupSeconds + tg.recordSeconds + tg.decodeSeconds
                  + tg.gateSeconds + tg.verifySeconds + tg.compressSeconds,
              wall_g);

    driver::RecordTiming ts; // steady state
    const double wall_s = timed(ts);
    EXPECT_GT(ts.recordSeconds, 0.0);
    EXPECT_GT(ts.decodeSeconds, 0.0);
    EXPECT_EQ(ts.gateSeconds, 0.0);
    EXPECT_LE(ts.setupSeconds + ts.recordSeconds + ts.decodeSeconds
                  + ts.gateSeconds + ts.verifySeconds + ts.compressSeconds,
              wall_s);
}

} // namespace
