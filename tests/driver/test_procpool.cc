/**
 * @file
 * Crash-safe sweep layer tests: process isolation reproduces the
 * thread pool's results byte for byte, host-level faults (worker
 * death, hangs) cost exactly the faulted cell, and the checkpoint
 * journal resumes killed sweeps — while rejecting corrupt or
 * mismatched journal files with typed errors instead of trusting
 * them.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/json.hh"
#include "driver/procpool.hh"
#include "driver/sweep.hh"
#include "driver/trace.hh"

namespace
{

using namespace cryptarch;
using driver::CellOutcome;
using driver::JournalError;
using driver::JournalErrorKind;
using driver::SweepCell;
using driver::SweepJournal;
using driver::SweepOptions;
using driver::SweepResult;
using kernels::KernelVariant;
using sim::MachineConfig;

/** Arms CRYPTARCH_SWEEP_CHAOS for one scope. */
class ChaosGuard
{
  public:
    explicit ChaosGuard(const std::string &spec)
    {
        ::setenv("CRYPTARCH_SWEEP_CHAOS", spec.c_str(), 1);
    }
    ~ChaosGuard() { ::unsetenv("CRYPTARCH_SWEEP_CHAOS"); }
};

/** A cheap 4-cell grid: two RC4 kernels x two models. */
std::vector<SweepCell>
smallGrid()
{
    return {
        {crypto::CipherId::RC4, KernelVariant::Optimized,
         MachineConfig::fourWide(), 512},
        {crypto::CipherId::RC4, KernelVariant::Optimized,
         MachineConfig::dataflow(), 512},
        {crypto::CipherId::Blowfish, KernelVariant::Optimized,
         MachineConfig::fourWide(), 512},
        {crypto::CipherId::Blowfish, KernelVariant::Optimized,
         MachineConfig::dataflow(), 512},
    };
}

SweepOptions
processOptions()
{
    SweepOptions opts;
    opts.isolation = driver::SweepIsolation::Process;
    return opts;
}

std::string
benchJsonString(const std::vector<SweepResult> &results,
                const std::string &tag)
{
    std::string path = ::testing::TempDir() + "BENCH_pp_" + tag + ".json";
    driver::writeBenchJson(path, "procpool", results);
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());
    return buf.str();
}

std::vector<uint8_t>
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string s = buf.str();
    return {s.begin(), s.end()};
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

JournalErrorKind
openKind(SweepJournal &j, const std::string &path, uint64_t fp,
         uint64_t count)
{
    try {
        j.open(path, fp, count);
    } catch (const JournalError &e) {
        return e.kind();
    }
    ADD_FAILURE() << "journal open unexpectedly succeeded";
    return JournalErrorKind::Io;
}

TEST(ProcPool, ProcessModeMatchesThreadModeByteForByte)
{
    auto cells = smallGrid();
    SweepOptions threadOpts;
    auto threadResults = driver::runCells(cells, threadOpts);
    auto processResults = driver::runCells(cells, processOptions());

    ASSERT_EQ(processResults.size(), threadResults.size());
    for (size_t i = 0; i < threadResults.size(); i++) {
        EXPECT_EQ(processResults[i].outcome, threadResults[i].outcome);
        EXPECT_EQ(processResults[i].stats.cycles,
                  threadResults[i].stats.cycles);
        EXPECT_EQ(processResults[i].stats.instructions,
                  threadResults[i].stats.instructions);
        // Healthy cells never carry worker attribution, so the JSON
        // below can be identical across isolation modes.
        EXPECT_EQ(processResults[i].worker, -1);
    }
    EXPECT_EQ(benchJsonString(threadResults, "thread"),
              benchJsonString(processResults, "process"));
}

TEST(ProcPool, ChaosCrashMarksOnlyTheFaultedCell)
{
    auto cells = smallGrid();
    ChaosGuard chaos("crash@RC4/optimized/4W");
    auto results = driver::runCells(cells, processOptions());

    ASSERT_EQ(results.size(), cells.size());
    EXPECT_EQ(results[0].outcome, CellOutcome::Crashed);
    EXPECT_FALSE(results[0].message.empty());
    EXPECT_GE(results[0].worker, 0);
    // The dead worker's remaining batch cell and the other group both
    // finish with real stats.
    for (size_t i = 1; i < results.size(); i++) {
        EXPECT_TRUE(results[i].ok()) << results[i].message;
        EXPECT_GT(results[i].stats.cycles, 0u);
        EXPECT_EQ(results[i].worker, -1);
    }
}

TEST(ProcPool, ChaosHangTripsTheWatchdog)
{
    auto cells = smallGrid();
    ChaosGuard chaos("hang@Blowfish/optimized/DF");
    auto opts = processOptions();
    opts.cellDeadlineSeconds = 1.0;
    auto results = driver::runCells(cells, opts);

    ASSERT_EQ(results.size(), cells.size());
    EXPECT_EQ(results[3].outcome, CellOutcome::TimedOut);
    EXPECT_NE(results[3].message.find("watchdog"), std::string::npos)
        << results[3].message;
    EXPECT_GE(results[3].worker, 0);
    for (size_t i = 0; i < 3; i++)
        EXPECT_TRUE(results[i].ok()) << results[i].message;
}

TEST(ProcPool, SingleWorkerDeathRequeuesDeterministically)
{
    // One worker, fault in the middle of the first group's batch: the
    // respawned worker must pick up the remainder and the result
    // vector must stay in cell order.
    auto cells = smallGrid();
    ChaosGuard chaos("crash@RC4/optimized/DF");
    auto opts = processOptions();
    opts.threads = 1;
    auto results = driver::runCells(cells, opts);

    ASSERT_EQ(results.size(), cells.size());
    EXPECT_TRUE(results[0].ok()) << results[0].message;
    EXPECT_EQ(results[1].outcome, CellOutcome::Crashed);
    EXPECT_TRUE(results[2].ok()) << results[2].message;
    EXPECT_TRUE(results[3].ok()) << results[3].message;
    for (size_t i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].cipher, cells[i].cipher);
        EXPECT_EQ(results[i].model, cells[i].model.name);
    }
}

TEST(ProcPool, RespawnBudgetExhaustionFailsPendingCellsSoftly)
{
    // Every cell faults and no respawns are allowed: each initial
    // worker retires (at most) its in-flight cell as Crashed, and
    // whatever is still queued when the pool dies must come back as
    // Error — never hang, never throw.
    auto cells = smallGrid();
    ChaosGuard chaos("crash@RC4/optimized/4W;crash@RC4/optimized/DF;"
                     "crash@Blowfish/optimized/4W;"
                     "crash@Blowfish/optimized/DF");
    auto opts = processOptions();
    opts.threads = 1;
    opts.respawnBudget = 0;
    auto results = driver::runCells(cells, opts);

    ASSERT_EQ(results.size(), cells.size());
    size_t crashed = 0, errored = 0;
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok());
        if (r.outcome == CellOutcome::Crashed)
            crashed++;
        else if (r.outcome == CellOutcome::Error) {
            errored++;
            EXPECT_NE(r.message.find("respawn budget"), std::string::npos)
                << r.message;
        }
    }
    EXPECT_EQ(crashed, 1u);
    EXPECT_EQ(errored, cells.size() - 1);
}

TEST(ProcPool, JournalResumeSkipsFinishedCellsByteForByte)
{
    auto cells = smallGrid();
    const std::string path = tempPath("journal_resume.bin");
    std::remove(path.c_str());

    auto opts = processOptions();
    opts.journalPath = path;
    auto first = driver::runCells(cells, opts);

    // The rerun must do zero functional work: every cell comes back
    // from the journal. Resume under thread isolation, where the
    // functionalRuns counter is observable (worker processes would
    // increment their own copy).
    SweepOptions resumeOpts;
    resumeOpts.journalPath = path;
    const uint64_t before = driver::functionalRuns();
    auto second = driver::runCells(cells, resumeOpts);
    EXPECT_EQ(driver::functionalRuns() - before, 0u);
    EXPECT_EQ(benchJsonString(first, "first"),
              benchJsonString(second, "second"));
    std::remove(path.c_str());
}

TEST(ProcPool, JournalResumeWorksAcrossIsolationModes)
{
    // A journal written under thread isolation resumes a process-
    // isolated run (and vice versa): the record format is shared.
    auto cells = smallGrid();
    const std::string path = tempPath("journal_cross.bin");
    std::remove(path.c_str());

    SweepOptions threadOpts;
    threadOpts.journalPath = path;
    auto first = driver::runCells(cells, threadOpts);

    auto procOpts = processOptions();
    procOpts.journalPath = path;
    const uint64_t before = driver::functionalRuns();
    auto second = driver::runCells(cells, procOpts);
    EXPECT_EQ(driver::functionalRuns() - before, 0u);
    EXPECT_EQ(benchJsonString(first, "xfirst"),
              benchJsonString(second, "xsecond"));
    std::remove(path.c_str());
}

TEST(ProcPool, JournalRejectsCorruptionWithTypedErrors)
{
    auto cells = smallGrid();
    const std::string path = tempPath("journal_corrupt.bin");
    std::remove(path.c_str());

    auto opts = processOptions();
    opts.journalPath = path;
    driver::runCells(cells, opts);

    const auto pristine = slurpFile(path);
    const uint64_t fp = driver::gridFingerprint(cells);
    ASSERT_GT(pristine.size(), 24u);

    // Bit-flip inside the first record's payload: checksum mismatch.
    {
        auto bytes = pristine;
        bytes[40] ^= 0x01;
        writeFile(path, bytes);
        SweepJournal j;
        EXPECT_EQ(openKind(j, path, fp, cells.size()),
                  JournalErrorKind::BadChecksum);
    }
    // Wrong magic.
    {
        auto bytes = pristine;
        bytes[0] ^= 0xff;
        writeFile(path, bytes);
        SweepJournal j;
        EXPECT_EQ(openKind(j, path, fp, cells.size()),
                  JournalErrorKind::BadMagic);
    }
    // Unknown version.
    {
        auto bytes = pristine;
        bytes[4] = 0x7f;
        writeFile(path, bytes);
        SweepJournal j;
        EXPECT_EQ(openKind(j, path, fp, cells.size()),
                  JournalErrorKind::BadVersion);
    }
    // Header cut short.
    {
        auto bytes = pristine;
        bytes.resize(10);
        writeFile(path, bytes);
        SweepJournal j;
        EXPECT_EQ(openKind(j, path, fp, cells.size()),
                  JournalErrorKind::Truncated);
    }
    // A different grid: same file, different fingerprint.
    {
        writeFile(path, pristine);
        SweepJournal j;
        EXPECT_EQ(openKind(j, path, fp ^ 1, cells.size()),
                  JournalErrorKind::GridMismatch);
    }
    std::remove(path.c_str());
}

TEST(ProcPool, JournalToleratesPartialTrailingRecord)
{
    // A SIGKILL mid-append leaves a severed trailing record; open()
    // must keep every complete record and truncate the tail away.
    auto cells = smallGrid();
    const std::string path = tempPath("journal_tail.bin");
    std::remove(path.c_str());

    auto opts = processOptions();
    opts.journalPath = path;
    driver::runCells(cells, opts);

    auto bytes = slurpFile(path);
    const size_t fullRecords = 4;
    bytes.push_back(0x02); // the first bytes of a fifth record
    bytes.push_back(0x00);
    bytes.push_back(0x00);
    writeFile(path, bytes);

    SweepJournal j;
    j.open(path, driver::gridFingerprint(cells), cells.size());
    EXPECT_EQ(j.loadedRecords().size(), fullRecords);
    // And the truncation is durable: the tail is gone from the file.
    EXPECT_EQ(slurpFile(path).size(), bytes.size() - 3);
    std::remove(path.c_str());
}

TEST(ProcPool, CorruptJournalFallsBackToFreshRun)
{
    auto cells = smallGrid();
    const std::string path = tempPath("journal_fallback.bin");
    std::remove(path.c_str());

    auto opts = processOptions();
    opts.journalPath = path;
    auto first = driver::runCells(cells, opts);

    auto bytes = slurpFile(path);
    bytes[40] ^= 0x01;
    writeFile(path, bytes);

    // The sweep must not trust the flipped journal: it reruns every
    // cell, rewrites the file, and still produces identical results.
    // Thread isolation here so the in-process functionalRuns counter
    // can witness the rerun (and then the skip).
    SweepOptions threadOpts;
    threadOpts.journalPath = path;
    const uint64_t before = driver::functionalRuns();
    auto second = driver::runCells(cells, threadOpts);
    EXPECT_GT(driver::functionalRuns() - before, 0u);
    EXPECT_EQ(benchJsonString(first, "ffirst"),
              benchJsonString(second, "fsecond"));

    // The rewritten journal is valid again and resumes cleanly.
    const uint64_t before2 = driver::functionalRuns();
    driver::runCells(cells, threadOpts);
    EXPECT_EQ(driver::functionalRuns() - before2, 0u);
    std::remove(path.c_str());
}

TEST(ProcPool, ResultPayloadRoundTrips)
{
    SweepResult r;
    r.cipher = crypto::CipherId::RC4;
    r.variant = KernelVariant::Optimized;
    r.model = "4W";
    r.bytes = 512;
    r.outcome = CellOutcome::Trapped;
    r.message = "trap: oob @ 0x42";
    r.worker = 3;
    r.stats.model = "4W";
    r.stats.instructions = 12345;
    r.stats.cycles = 6789;
    r.stats.loads = 42;
    r.stats.sboxCaches.push_back({100, 7});
    r.stats.l1 = {1000, 11};
    r.stats.classCounts[2] = 99;
    r.stats.stallCycles[1] = 55;
    r.stats.stallByClass[2][1] = 33;

    const auto payload = driver::serializeResultPayload(r);
    SweepResult out;
    driver::deserializeResultPayload(payload, out);

    EXPECT_EQ(out.outcome, CellOutcome::Trapped);
    EXPECT_EQ(out.message, r.message);
    EXPECT_EQ(out.worker, 3);
    EXPECT_EQ(out.stats.model, "4W");
    EXPECT_EQ(out.stats.instructions, 12345u);
    EXPECT_EQ(out.stats.cycles, 6789u);
    EXPECT_EQ(out.stats.loads, 42u);
    ASSERT_EQ(out.stats.sboxCaches.size(), 1u);
    EXPECT_EQ(out.stats.sboxCaches[0].misses, 7u);
    EXPECT_EQ(out.stats.l1.accesses, 1000u);
    EXPECT_EQ(out.stats.classCounts[2], 99u);
    EXPECT_EQ(out.stats.stallCycles[1], 55u);
    EXPECT_EQ(out.stats.stallByClass[2][1], 33u);

    // Truncation and trailing garbage are typed rejections.
    SweepResult scratch;
    EXPECT_THROW(driver::deserializeResultPayload(
                     {payload.data(), payload.size() - 1}, scratch),
                 JournalError);
    auto longer = payload;
    longer.push_back(0);
    EXPECT_THROW(driver::deserializeResultPayload(longer, scratch),
                 JournalError);
}

TEST(ProcPool, ChaosSpecParsing)
{
    auto points = driver::parseChaosSpec(
        "crash@RC4/optimized/4W;hang@Blowfish/optimized/DF;"
        "bogus@X/Y/Z;missing-slashes;exit@IDEA/grouped/8W+");
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].action, driver::ChaosAction::Crash);
    EXPECT_EQ(points[0].cipher, "RC4");
    EXPECT_EQ(points[0].variant, "optimized");
    EXPECT_EQ(points[0].model, "4W");
    EXPECT_EQ(points[1].action, driver::ChaosAction::Hang);
    EXPECT_EQ(points[2].action, driver::ChaosAction::Exit);
    EXPECT_EQ(points[2].model, "8W+");

    SweepCell cell{crypto::CipherId::RC4, KernelVariant::Optimized,
                   MachineConfig::fourWide(), 512};
    EXPECT_EQ(driver::chaosActionFor(points, cell),
              driver::ChaosAction::Crash);
    cell.model = MachineConfig::dataflow();
    EXPECT_EQ(driver::chaosActionFor(points, cell),
              driver::ChaosAction::None);
}

TEST(ProcPool, SweepOptionsFromEnvironment)
{
    ::setenv("CRYPTARCH_SWEEP_ISOLATE", "process", 1);
    ::setenv("CRYPTARCH_SWEEP_JOURNAL", "/tmp/j.bin", 1);
    ::setenv("CRYPTARCH_SWEEP_DEADLINE", "12.5", 1);
    ::setenv("CRYPTARCH_SWEEP_RESPAWNS", "3", 1);
    auto opts = driver::sweepOptionsFromEnv();
    EXPECT_EQ(opts.isolation, driver::SweepIsolation::Process);
    EXPECT_EQ(opts.journalPath, "/tmp/j.bin");
    EXPECT_DOUBLE_EQ(opts.cellDeadlineSeconds, 12.5);
    EXPECT_EQ(opts.respawnBudget, 3u);

    // Unrecognized isolation names keep the safe default.
    ::setenv("CRYPTARCH_SWEEP_ISOLATE", "container", 1);
    EXPECT_EQ(driver::sweepOptionsFromEnv().isolation,
              driver::SweepIsolation::Thread);

    ::unsetenv("CRYPTARCH_SWEEP_ISOLATE");
    ::unsetenv("CRYPTARCH_SWEEP_JOURNAL");
    ::unsetenv("CRYPTARCH_SWEEP_DEADLINE");
    ::unsetenv("CRYPTARCH_SWEEP_RESPAWNS");
}

} // namespace
