/**
 * @file
 * Loop-aware trace compression: detection, refusal paths, byte-exact
 * expansion, and serialization integrity.
 *
 * Two suites, by design:
 *   CompressedTrace   isa-level unit tests on synthetic streams plus
 *                     serialization round-trip/corruption coverage.
 *   CompressedReplay  driver-level properties — which kernels compress
 *                     and which refuse, and that compression can never
 *                     change a replayed stream or a simulated figure.
 * The `compressed-replay` ctest label (tests/CMakeLists.txt) runs
 * both, and CI additionally diffs a full tab02 grid with compression
 * forced on against forced off.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/trace.hh"
#include "isa/compressed_trace.hh"
#include "isa/packed_trace.hh"
#include "util/xorshift.hh"
#include "verify/expand_check.hh"

namespace
{

using namespace cryptarch;
using isa::CompressedTrace;
using isa::CompressOutcome;
using isa::PackedTrace;
using isa::TraceErrorKind;
using isa::TraceFormatError;
using util::Xorshift64;

isa::DynInst
plainInst(uint64_t seq, uint32_t pc)
{
    isa::DynInst d;
    d.seq = seq;
    d.pc = pc;
    d.nextPc = pc + 1;
    return d;
}

/**
 * Synthetic kernel shape: 3 setup instructions, then @p iters
 * iterations of [affine load; store; backward branch], then one
 * trailing instruction. With @p looseStore the store's address walks a
 * data-dependent (non-affine) pattern — the RC4-swap shape the
 * compressor must refuse; with @p sboxLoad the load becomes an SBOX
 * lookup with a data-dependent address, which must still compress via
 * an explicit per-iteration address table.
 */
PackedTrace
makeLoopTrace(uint64_t iters, bool looseStore = false,
              bool sboxLoad = false)
{
    PackedTrace t;
    uint64_t seq = 0;
    for (uint32_t pc = 0; pc < 3; pc++)
        t.append(plainInst(seq++, pc));
    for (uint64_t it = 0; it < iters; it++) {
        isa::DynInst ld = plainInst(seq++, 3);
        ld.isLoad = true;
        ld.size = 4;
        if (sboxLoad) {
            ld.op = isa::Opcode::Sbox;
            ld.addr = 0x1000 + ((it * 2654435761u) & 0xFF) * 4;
        } else {
            ld.addr = 0x1000 + 8 * it;
        }
        t.append(ld);

        isa::DynInst st = plainInst(seq++, 4);
        st.isStore = true;
        st.size = 4;
        st.addr = looseStore ? 0x2000 + ((it * 2654435761u) & 0xFF) * 4
                             : 0x2000;
        t.append(st);

        isa::DynInst br = plainInst(seq++, 5);
        br.branch = true;
        br.taken = it + 1 < iters;
        br.nextPc = br.taken ? 3 : 6;
        t.append(br);
    }
    t.append(plainInst(seq++, 6));
    return t;
}

// ---------------------------------------------------------------------------
// CompressedTrace: synthetic streams

TEST(CompressedTrace, SyntheticLoopCompressesAndExpandsExactly)
{
    auto packed = makeLoopTrace(12);
    CompressedTrace c;
    ASSERT_EQ(CompressedTrace::compress(packed, c),
              CompressOutcome::Accepted);
    // The prefix absorbs the setup and the first iteration, so 11 of
    // the 12 iterations are stored as deltas over a 3-slot body.
    EXPECT_EQ(c.bodyLength(), 3u);
    EXPECT_EQ(c.iterations(), 11u);
    EXPECT_EQ(c.instructions(), packed.size());
    std::string why;
    EXPECT_TRUE(verify::verifyExpansion(packed, c, &why)) << why;
    EXPECT_LT(c.storedBytes(), packed.packedBytes());
}

TEST(CompressedTrace, LooseStoreAddressesRefuse)
{
    auto packed = makeLoopTrace(12, /*looseStore=*/true);
    CompressedTrace c;
    EXPECT_EQ(CompressedTrace::compress(packed, c),
              CompressOutcome::LooseAddresses);
    EXPECT_TRUE(c.empty());
}

TEST(CompressedTrace, SboxAddressesCompressViaExplicitTable)
{
    // The same data-dependent address walk that refuses on a plain
    // store is the expected shape for an SBOX lookup — the compressor
    // keeps those as one u32 per iteration.
    auto packed = makeLoopTrace(12, /*looseStore=*/false,
                                /*sboxLoad=*/true);
    CompressedTrace c;
    ASSERT_EQ(CompressedTrace::compress(packed, c),
              CompressOutcome::Accepted);
    std::string why;
    EXPECT_TRUE(verify::verifyExpansion(packed, c, &why)) << why;
}

TEST(CompressedTrace, TooFewIterationsRefuse)
{
    auto packed = makeLoopTrace(6);
    CompressedTrace c;
    EXPECT_EQ(CompressedTrace::compress(packed, c),
              CompressOutcome::NoLoop);
}

TEST(CompressedTrace, StraightLineStreamRefuses)
{
    PackedTrace t;
    for (uint64_t i = 0; i < 64; i++)
        t.append(plainInst(i, static_cast<uint32_t>(i)));
    CompressedTrace c;
    EXPECT_EQ(CompressedTrace::compress(t, c), CompressOutcome::NoLoop);
}

TEST(CompressedTrace, ExpandedSeqIsGloballyRenumbered)
{
    auto packed = makeLoopTrace(16);
    CompressedTrace c;
    ASSERT_EQ(CompressedTrace::compress(packed, c),
              CompressOutcome::Accepted);
    uint64_t i = 0;
    for (auto r = c.reader(); !r.done(); i++)
        ASSERT_EQ(r.next().seq, i);
    EXPECT_EQ(i, packed.size());
}

// ---------------------------------------------------------------------------
// CompressedTrace: serialization

std::vector<uint8_t>
compressedStream(uint64_t iters = 16)
{
    auto packed = makeLoopTrace(iters, false, /*sboxLoad=*/true);
    CompressedTrace c;
    if (CompressedTrace::compress(packed, c) != CompressOutcome::Accepted)
        throw std::logic_error("synthetic stream must compress");
    return c.serialize();
}

TEST(CompressedTrace, SerializeRoundTripsBitExactly)
{
    auto bytes = compressedStream();
    auto c = CompressedTrace::deserialize(bytes);
    EXPECT_EQ(c.serialize(), bytes);

    auto packed = makeLoopTrace(16, false, true);
    std::string why;
    EXPECT_TRUE(verify::verifyExpansion(packed, c, &why)) << why;
}

TEST(CompressedTrace, RejectsBadMagic)
{
    auto bytes = compressedStream();
    bytes[0] = 'X';
    try {
        CompressedTrace::deserialize(bytes);
        FAIL() << "bad magic accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::BadMagic);
    }
}

TEST(CompressedTrace, RejectsBadVersion)
{
    auto bytes = compressedStream();
    bytes[4] = 0xFF;
    try {
        CompressedTrace::deserialize(bytes);
        FAIL() << "bad version accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::BadVersion);
    }
}

TEST(CompressedTrace, RejectsTruncation)
{
    auto bytes = compressedStream();
    for (size_t keep : {size_t{0}, size_t{3}, size_t{71}, size_t{72},
                        bytes.size() / 2, bytes.size() - 1}) {
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
        EXPECT_THROW(CompressedTrace::deserialize(cut), TraceFormatError)
            << "accepted " << keep << " of " << bytes.size() << " bytes";
    }
}

TEST(CompressedTrace, RejectsPayloadCorruption)
{
    auto bytes = compressedStream();
    bytes[bytes.size() - 10] ^= 0x40; // inside the embedded suffix blob
    try {
        CompressedTrace::deserialize(bytes);
        FAIL() << "corrupted payload accepted";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::BadChecksum);
    }
}

TEST(CompressedTrace, FuzzedCorruptionNeverCrashesReader)
{
    // Same contract as the PackedTrace fuzz: every random corruption
    // is rejected with a typed error — the payload is checksummed,
    // header counts are bounds- and sum-checked, slot fields are
    // range-checked and the delta tables must match the slot modes.
    auto bytes = compressedStream(32);
    Xorshift64 rng(0xC0DEC);
    for (int iter = 0; iter < 400; iter++) {
        auto corrupt = bytes;
        const int flips = 1 + static_cast<int>(rng.next() % 4);
        for (int f = 0; f < flips; f++)
            corrupt[rng.next() % corrupt.size()] ^=
                static_cast<uint8_t>(1u << (rng.next() % 8));
        if (corrupt == bytes)
            continue;
        try {
            auto c = CompressedTrace::deserialize(corrupt);
            for (auto r = c.reader(); !r.done();)
                r.next();
            FAIL() << "corrupted stream accepted at iter " << iter;
        } catch (const TraceFormatError &) {
            // expected: typed rejection, no UB
        }
    }
}

// ---------------------------------------------------------------------------
// CompressedReplay: driver-level policy and kernel properties

/** Restores the process-wide compression mode after each test. */
class CompressedReplay : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        driver::setTraceCompression(driver::TraceCompression::Auto);
    }
};

TEST_F(CompressedReplay, Rc4SwapStoresRefuseCompression)
{
    // RC4's inner loop swaps S[i] and S[j] through plain stores at
    // data-dependent addresses: exactly the stream the compressor must
    // refuse, falling back to full packed storage with no change.
    driver::setTraceCompression(driver::TraceCompression::On);
    auto trace = driver::recordKernelTrace(crypto::CipherId::RC4,
                                           kernels::KernelVariant::Optimized);
    EXPECT_FALSE(trace.isCompressed());
    EXPECT_EQ(trace.compressOutcome(), CompressOutcome::LooseAddresses);
    EXPECT_EQ(trace.storedBytes(), trace.packedEquivalentBytes());
}

TEST_F(CompressedReplay, ShortSessionRefusesCompression)
{
    // One block => the loop-close branch never repeats: setup-only
    // shapes stay packed.
    driver::setTraceCompression(driver::TraceCompression::On);
    auto trace = driver::recordKernelTrace(
        crypto::CipherId::Rijndael, kernels::KernelVariant::Optimized, 16);
    EXPECT_FALSE(trace.isCompressed());
    EXPECT_EQ(trace.compressOutcome(), CompressOutcome::NoLoop);
}

TEST_F(CompressedReplay, OffModeNeverAttempts)
{
    driver::setTraceCompression(driver::TraceCompression::Off);
    auto trace = driver::recordKernelTrace(
        crypto::CipherId::Rijndael, kernels::KernelVariant::Optimized, 512);
    EXPECT_FALSE(trace.isCompressed());
    EXPECT_EQ(trace.compressOutcome(), CompressOutcome::NotAttempted);
}

TEST_F(CompressedReplay, BlockCipherCompressesManyFold)
{
    driver::setTraceCompression(driver::TraceCompression::Auto);
    auto trace = driver::recordKernelTrace(crypto::CipherId::Rijndael,
                                           kernels::KernelVariant::Optimized);
    ASSERT_TRUE(trace.isCompressed());
    EXPECT_EQ(trace.compressOutcome(), CompressOutcome::Accepted);
    // The acceptance bar is >= 5x on block ciphers; the steady-state
    // body of a full session should clear it comfortably.
    EXPECT_GE(trace.packedEquivalentBytes(),
              5 * trace.storedBytes())
        << "stored " << trace.storedBytes() << " vs packed "
        << trace.packedEquivalentBytes();
}

TEST_F(CompressedReplay, CompressionCannotChangeSimulatedFigures)
{
    driver::setTraceCompression(driver::TraceCompression::Off);
    auto plain = driver::recordKernelTrace(crypto::CipherId::Rijndael,
                                           kernels::KernelVariant::Optimized,
                                           1024);
    driver::setTraceCompression(driver::TraceCompression::On);
    auto packed = driver::recordKernelTrace(crypto::CipherId::Rijndael,
                                            kernels::KernelVariant::Optimized,
                                            1024);
    ASSERT_TRUE(packed.isCompressed());
    // Identical streams...
    EXPECT_EQ(plain.toPacked().serialize(), packed.toPacked().serialize());
    // ...and identical stats out of a real timing model.
    auto cfg = sim::MachineConfig::fourWidePlus();
    auto a = plain.replay(cfg);
    auto b = packed.replay(cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.sboxAccesses, b.sboxAccesses);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
}

TEST_F(CompressedReplay, EveryCatalogKernelExpandsByteIdentically)
{
    // The tentpole property: for every (cipher, variant), whatever the
    // loop detector decides, an adopted compressed stream must expand
    // to the exact packed stream. Short sessions keep the sweep fast
    // while still giving block ciphers dozens of steady iterations.
    driver::setTraceCompression(driver::TraceCompression::Off);
    const kernels::KernelVariant variants[] = {
        kernels::KernelVariant::BaselineNoRot,
        kernels::KernelVariant::BaselineRot,
        kernels::KernelVariant::Optimized,
        kernels::KernelVariant::OptimizedGrp,
        kernels::KernelVariant::OptimizedFused,
    };
    for (auto id : driver::allCiphers()) {
        for (auto variant : variants) {
            SCOPED_TRACE(crypto::cipherInfo(id).name + "/"
                         + kernels::variantName(variant));
            auto trace = driver::recordKernelTrace(id, variant, 512);
            const PackedTrace packed = trace.toPacked();
            CompressedTrace c;
            const auto outcome = CompressedTrace::compress(packed, c);
            if (outcome != CompressOutcome::Accepted)
                continue; // refusal == packed storage: trivially exact
            std::string why;
            EXPECT_TRUE(verify::verifyExpansion(packed, c, &why)) << why;
            // Re-encoding the expanded stream reproduces the packed
            // serialization byte for byte.
            PackedTrace reencoded;
            reencoded.reserve(c.instructions());
            for (auto r = c.reader(); !r.done();)
                reencoded.append(r.next(), /*keepResult=*/true);
            EXPECT_EQ(reencoded.serialize(), packed.serialize());
        }
    }
}

TEST_F(CompressedReplay, RecordTimingSplitsPhases)
{
    driver::RecordTiming timing;
    auto trace = driver::recordKernelTrace(
        crypto::CipherId::Rijndael, kernels::KernelVariant::Optimized, 512,
        kernels::KernelDirection::Encrypt, &timing);
    (void)trace;
    EXPECT_GT(timing.recordSeconds, 0.0);
    EXPECT_GE(timing.verifySeconds, 0.0);
    EXPECT_GE(timing.compressSeconds, 0.0);
}

} // namespace
