/**
 * @file
 * Integration tests pinning the paper's headline claims, so the
 * reproduction cannot silently regress. Small sessions keep them
 * fast; the benches produce the full-figure numbers.
 */

#include <gtest/gtest.h>

#include "kernels/kernel.hh"
#include "sim/pipeline.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch;
using crypto::CipherId;
using kernels::KernelVariant;
using sim::MachineConfig;
using util::Xorshift64;

constexpr size_t session = 1024;

sim::SimStats
run(CipherId id, KernelVariant v, const MachineConfig &cfg,
    size_t bytes = session)
{
    const auto &info = crypto::cipherInfo(id);
    Xorshift64 rng(0xF00 + static_cast<int>(id));
    auto key = rng.bytes(info.keyBits / 8);
    auto iv = rng.bytes(info.isStream ? 0 : info.blockBytes);
    auto build = kernels::buildKernel(id, v, key, iv, bytes);
    isa::Machine m;
    auto pt = rng.bytes(bytes);
    build.install(m, kernels::toWordImage(id, pt));
    sim::OooScheduler sched(cfg);
    m.run(build.program, &sched, 1ull << 32);
    return sched.finish();
}

// Figure 4: 3DES is the slowest cipher; RC4 is the fastest, by ~10x.
TEST(PaperShapes, Fig4ThroughputOrdering)
{
    auto des = run(CipherId::TripleDES, KernelVariant::BaselineRot,
                   MachineConfig::fourWide());
    auto rc4 = run(CipherId::RC4, KernelVariant::BaselineRot,
                   MachineConfig::fourWide());
    double ratio = static_cast<double>(des.cycles) / rc4.cycles;
    EXPECT_GT(ratio, 6.0);
    for (auto id : {CipherId::Blowfish, CipherId::IDEA, CipherId::MARS,
                    CipherId::RC6, CipherId::Rijndael,
                    CipherId::Twofish}) {
        auto s = run(id, KernelVariant::BaselineRot,
                     MachineConfig::fourWide());
        EXPECT_LT(s.cycles, des.cycles) << crypto::cipherInfo(id).name;
        EXPECT_GT(s.cycles, rc4.cycles) << crypto::cipherInfo(id).name;
    }
}

// Figure 4/5: Blowfish, IDEA and RC6 run near dataflow speed on 4W.
TEST(PaperShapes, NearDataflowCiphers)
{
    for (auto id : {CipherId::Blowfish, CipherId::IDEA, CipherId::RC6}) {
        auto w4 = run(id, KernelVariant::BaselineRot,
                      MachineConfig::fourWide());
        auto df = run(id, KernelVariant::BaselineRot,
                      MachineConfig::dataflow());
        EXPECT_LT(static_cast<double>(w4.cycles) / df.cycles, 1.25)
            << crypto::cipherInfo(id).name;
    }
}

// Figure 5: branch prediction is never a bottleneck; aliasing and
// window size matter only for RC4.
TEST(PaperShapes, Fig5BottleneckStory)
{
    for (auto id : {CipherId::TripleDES, CipherId::RC4,
                    CipherId::Rijndael, CipherId::Twofish}) {
        auto df = run(id, KernelVariant::BaselineRot,
                      MachineConfig::dataflow());
        auto branch = run(id, KernelVariant::BaselineRot,
                          MachineConfig::dfPlusBranch());
        EXPECT_LT(static_cast<double>(branch.cycles) / df.cycles, 1.05)
            << crypto::cipherInfo(id).name;

        auto alias = run(id, KernelVariant::BaselineRot,
                         MachineConfig::dfPlusAlias());
        double alias_cost = static_cast<double>(alias.cycles) / df.cycles;
        if (id == CipherId::RC4)
            EXPECT_GT(alias_cost, 1.5);
        else
            EXPECT_LT(alias_cost, 1.10)
                << crypto::cipherInfo(id).name;
    }
}

// Figure 10: the optimized kernels beat the rotate baseline on 4W for
// every cipher, IDEA gains the most, RC6 the least.
TEST(PaperShapes, Fig10SpeedupOrdering)
{
    double best = 0, worst = 10, idea_speedup = 0, rc6_speedup = 10;
    for (const auto &info : crypto::cipherCatalog()) {
        auto base = run(info.id, KernelVariant::BaselineRot,
                        MachineConfig::fourWide());
        auto opt = run(info.id, KernelVariant::Optimized,
                       MachineConfig::fourWide());
        double speedup = static_cast<double>(base.cycles) / opt.cycles;
        EXPECT_GE(speedup, 0.99) << info.name;
        best = std::max(best, speedup);
        worst = std::min(worst, speedup);
        if (info.id == CipherId::IDEA)
            idea_speedup = speedup;
        if (info.id == CipherId::RC6)
            rc6_speedup = speedup;
    }
    EXPECT_EQ(best, idea_speedup) << "IDEA must gain the most (MULMOD)";
    // RC6 gains modestly beyond rotates (the paper: "only slightly"
    // from fast modular multiplication). In this reproduction its
    // early-out multiply benefit puts it level with 3DES at the
    // bottom rather than strictly last.
    EXPECT_LT(rc6_speedup, 1.45) << "RC6 gains must stay modest";
    EXPECT_GT(worst, 0.99);
    EXPECT_GT(idea_speedup, 1.8);
}

// Figure 10, Orig/4W: losing rotates hurts Mars and RC6 the most.
TEST(PaperShapes, RotateLossHurtsMarsAndRc6Most)
{
    double mars_slow = 0, rc6_slow = 0;
    for (const auto &info : crypto::cipherCatalog()) {
        auto rot = run(info.id, KernelVariant::BaselineRot,
                       MachineConfig::fourWide());
        auto norot = run(info.id, KernelVariant::BaselineNoRot,
                         MachineConfig::fourWide());
        double slowdown = static_cast<double>(norot.cycles) / rot.cycles;
        if (info.id == CipherId::MARS)
            mars_slow = slowdown;
        else if (info.id == CipherId::RC6)
            rc6_slow = slowdown;
        else
            EXPECT_LT(slowdown, 1.15) << info.name;
    }
    EXPECT_GT(mars_slow, 1.15);
    EXPECT_GT(rc6_slow, 1.10);
}

// Section 6: Rijndael and Twofish saturate 4-wide issue; the 8-wide
// machine unlocks them.
TEST(PaperShapes, WideMachineUnlocksRijndael)
{
    auto w4p = run(CipherId::Rijndael, KernelVariant::Optimized,
                   MachineConfig::fourWidePlus());
    auto w8p = run(CipherId::Rijndael, KernelVariant::Optimized,
                   MachineConfig::eightWidePlus());
    EXPECT_GT(static_cast<double>(w4p.cycles) / w8p.cycles, 1.3);
}

// Figure 2 prerequisite: 3DES on a 1 GHz part cannot saturate a T3
// line (~5.6 MB/s) with much headroom — the paper's motivating claim.
TEST(PaperShapes, TripleDesBarelySaturatesT3)
{
    auto s = run(CipherId::TripleDES, KernelVariant::BaselineRot,
                 MachineConfig::fourWide(), 4096);
    double mbps_at_1ghz = 1e9 / (static_cast<double>(s.cycles) / 4096)
        / 1e6;
    EXPECT_LT(mbps_at_1ghz, 25.0); // nowhere near 100 Mb/s Ethernet x2
    EXPECT_GT(mbps_at_1ghz, 5.0);  // but does cover a T3 (5.6 MB/s)
}

} // namespace
