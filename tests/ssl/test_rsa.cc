/** @file Tests for the RSA substrate. */

#include <gtest/gtest.h>

#include "ssl/rsa.hh"

namespace
{

using namespace cryptarch::ssl;
using cryptarch::util::BigInt;
using cryptarch::util::Xorshift64;

TEST(MillerRabin, KnownPrimes)
{
    Xorshift64 rng(1);
    for (uint64_t p : {2ull, 3ull, 65537ull, 2147483647ull,
                       1000000007ull, 1000000009ull}) {
        EXPECT_TRUE(isProbablePrime(BigInt(p), rng)) << p;
    }
}

TEST(MillerRabin, KnownComposites)
{
    Xorshift64 rng(2);
    // Includes Carmichael numbers (561, 1105, 1729) and squares.
    for (uint64_t c : {1ull, 4ull, 561ull, 1105ull, 1729ull, 65536ull,
                       1000000011ull, 2147483647ull * 3}) {
        EXPECT_FALSE(isProbablePrime(BigInt(c), rng)) << c;
    }
}

TEST(GeneratePrime, HasRequestedSize)
{
    Xorshift64 rng(3);
    for (unsigned bits : {64u, 96u, 128u}) {
        BigInt p = generatePrime(bits, rng);
        EXPECT_EQ(p.bitLength(), bits);
        EXPECT_TRUE(p.isOdd());
        EXPECT_TRUE(isProbablePrime(p, rng));
    }
}

class RsaRoundtrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(RsaRoundtrip, EncryptDecrypt)
{
    Xorshift64 rng(4 + GetParam());
    RsaKey key = generateRsaKey(GetParam(), rng);
    EXPECT_GE(key.n.bitLength(), GetParam() - 1);
    for (int i = 0; i < 5; i++) {
        BigInt m = BigInt::mod(BigInt::randomBits(GetParam() - 2, rng),
                               key.n);
        BigInt c = rsaPublic(m, key);
        EXPECT_NE(c, m);
        EXPECT_EQ(rsaPrivate(c, key), m);
    }
}

TEST_P(RsaRoundtrip, CrtMatchesPlainExponentiation)
{
    Xorshift64 rng(40 + GetParam());
    RsaKey key = generateRsaKey(GetParam(), rng);
    for (int i = 0; i < 8; i++) {
        BigInt c = BigInt::mod(BigInt::randomBits(GetParam(), rng),
                               key.n);
        EXPECT_EQ(rsaPrivate(c, key), rsaPrivateNoCrt(c, key));
    }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaRoundtrip,
                         ::testing::Values(256u, 384u, 512u));

// CRT equivalence at the boundary messages, where a wrong CRT
// recombination is likeliest to show: 0 and 1 are fixed points, and
// n-1 maps to itself under any odd exponent.
TEST(Rsa, CrtMatchesPlainOnEdgeMessages)
{
    Xorshift64 rng(123);
    RsaKey key = generateRsaKey(384, rng);
    const BigInt edges[] = {BigInt(0), BigInt(1),
                            BigInt::sub(key.n, BigInt(1))};
    for (const BigInt &m : edges) {
        BigInt c = rsaPublic(m, key);
        EXPECT_EQ(rsaPrivate(c, key), rsaPrivateNoCrt(c, key));
        EXPECT_EQ(rsaPrivate(c, key), m);
    }
}

TEST(Rsa, CrtIsCheaperThanPlain)
{
    Xorshift64 rng(99);
    RsaKey key = generateRsaKey(512, rng);
    BigInt c = BigInt::mod(BigInt::randomBits(510, rng), key.n);
    BigInt::resetMulOps();
    (void)rsaPrivate(c, key);
    uint64_t crt_ops = BigInt::mulOps();
    BigInt::resetMulOps();
    (void)rsaPrivateNoCrt(c, key);
    uint64_t plain_ops = BigInt::mulOps();
    // CRT does two half-size exponentiations: ~4x fewer multiplies.
    EXPECT_LT(crt_ops * 2, plain_ops);
}

TEST(Rsa, RejectsOversizeMessages)
{
    Xorshift64 rng(7);
    RsaKey key = generateRsaKey(256, rng);
    EXPECT_THROW(rsaPublic(key.n, key), std::invalid_argument);
    EXPECT_THROW(rsaPrivate(key.n, key), std::invalid_argument);
}

} // namespace
