/** @file Tests for the server-at-scale SSL workload simulation. */

#include <gtest/gtest.h>

#include "ssl/server.hh"

namespace
{

using namespace cryptarch;
using ssl::ServerRates;
using ssl::ServerSimParams;
using ssl::ServerSimResult;

// Hand-filled rates (no simulator runs): a 3DES-like bulk cipher and a
// Blowfish-like key-agility outlier, so the tests are fast and the
// expectations explicit.
ServerRates
desLikeRates()
{
    ServerRates r;
    r.cipher = crypto::CipherId::TripleDES;
    r.model = "4W";
    r.serverHandshakeCycles = 5e6;
    r.clientHandshakeCycles = 1e5;
    r.keySetupCycles = 50e3;
    r.prologueCycles = 800;
    r.cyclesPerByte = 100;
    return r;
}

ServerRates
blowfishLikeRates()
{
    ServerRates r = desLikeRates();
    r.cipher = crypto::CipherId::Blowfish;
    r.keySetupCycles = 10e6; // the Figure 6 outlier
    r.cyclesPerByte = 60;
    return r;
}

ServerSimParams
smallParams()
{
    ServerSimParams p;
    p.sessions = 20000;
    p.loadFactors = {0.5, 0.9, 1.2};
    return p;
}

void
expectIdentical(const ServerSimResult &a, const ServerSimResult &b)
{
    EXPECT_EQ(a.sessions, b.sessions);
    EXPECT_EQ(a.chainDigest, b.chainDigest);
    EXPECT_EQ(a.meanServiceCycles, b.meanServiceCycles);
    EXPECT_EQ(a.meanSessionBytes, b.meanSessionBytes);
    EXPECT_EQ(a.meanRequests, b.meanRequests);
    EXPECT_EQ(a.handshakeFraction, b.handshakeFraction);
    EXPECT_EQ(a.setupFraction, b.setupFraction);
    EXPECT_EQ(a.bulkFraction, b.bulkFraction);
    EXPECT_EQ(a.otherFraction, b.otherFraction);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (size_t i = 0; i < a.points.size(); i++) {
        EXPECT_EQ(a.points[i].offeredPerGcycle,
                  b.points[i].offeredPerGcycle);
        EXPECT_EQ(a.points[i].achievedPerGcycle,
                  b.points[i].achievedPerGcycle);
        EXPECT_EQ(a.points[i].utilization, b.points[i].utilization);
        EXPECT_EQ(a.points[i].p50Cycles, b.points[i].p50Cycles);
        EXPECT_EQ(a.points[i].p95Cycles, b.points[i].p95Cycles);
        EXPECT_EQ(a.points[i].p99Cycles, b.points[i].p99Cycles);
        EXPECT_EQ(a.points[i].meanCycles, b.points[i].meanCycles);
    }
}

TEST(ServerSim, DeterministicAcrossRuns)
{
    auto a = ssl::runServerSim(desLikeRates(), smallParams());
    auto b = ssl::runServerSim(desLikeRates(), smallParams());
    expectIdentical(a, b);
}

// The grid runner's determinism contract: bit-identical results for
// any worker-thread count (the acceptance criterion BENCH_server.json
// inherits).
TEST(ServerSim, DeterministicAcrossThreadCounts)
{
    std::vector<ServerRates> rates;
    for (int i = 0; i < 6; i++)
        rates.push_back(i % 2 ? blowfishLikeRates() : desLikeRates());
    auto params = smallParams();
    auto serial = ssl::runServerSims(rates, params, 1);
    auto parallel = ssl::runServerSims(rates, params, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); i++)
        expectIdentical(serial[i], parallel[i]);
}

TEST(ServerSim, FractionsSumToOne)
{
    auto r = ssl::runServerSim(desLikeRates(), smallParams());
    EXPECT_NEAR(r.handshakeFraction + r.setupFraction + r.bulkFraction
                    + r.otherFraction,
                1.0, 1e-9);
    EXPECT_GT(r.handshakeFraction, 0.0);
    EXPECT_GT(r.setupFraction, 0.0);
    EXPECT_GT(r.bulkFraction, 0.0);
    EXPECT_GT(r.otherFraction, 0.0);
    // Log-normal with an 8 KB median and heavy right tail: the mean
    // lands above the median but well under the 1 MB clamp.
    EXPECT_GT(r.meanSessionBytes, 8000.0);
    EXPECT_LT(r.meanSessionBytes, 40000.0);
    EXPECT_GE(r.meanRequests, 1.0);
}

TEST(ServerSim, LatencyPercentilesGrowWithLoad)
{
    auto r = ssl::runServerSim(desLikeRates(), smallParams());
    ASSERT_EQ(r.points.size(), 3u);
    for (const auto &pt : r.points) {
        EXPECT_LE(pt.p50Cycles, pt.p95Cycles);
        EXPECT_LE(pt.p95Cycles, pt.p99Cycles);
        EXPECT_GT(pt.p50Cycles, 0.0);
    }
    EXPECT_LT(r.points[0].p99Cycles, r.points[1].p99Cycles);
    EXPECT_LT(r.points[1].p99Cycles, r.points[2].p99Cycles);
}

TEST(ServerSim, SaturationCapsAchievedThroughput)
{
    auto r = ssl::runServerSim(desLikeRates(), smallParams());
    const auto &light = r.points[0];   // load 0.5
    const auto &beyond = r.points[2];  // load 1.2
    // Below saturation the server keeps up with the offered rate.
    EXPECT_NEAR(light.achievedPerGcycle / light.offeredPerGcycle, 1.0,
                0.05);
    // Past saturation throughput pins at capacity: achieved stays well
    // under offered while the cores run essentially flat out.
    EXPECT_LT(beyond.achievedPerGcycle, 0.92 * beyond.offeredPerGcycle);
    EXPECT_GT(beyond.utilization, 0.95);
}

// Key agility as a first-class axis: the Figure 6 Blowfish setup cost
// must surface as a dominant per-session fraction.
TEST(ServerSim, KeySetupCostIsFirstClass)
{
    auto des = ssl::runServerSim(desLikeRates(), smallParams());
    auto bf = ssl::runServerSim(blowfishLikeRates(), smallParams());
    EXPECT_GT(bf.setupFraction, 5 * des.setupFraction);
    EXPECT_GT(bf.setupFraction, 0.2);
    EXPECT_GT(bf.meanServiceCycles, des.meanServiceCycles);
}

// Session resumption shifts the breakdown toward key setup: resumed
// sessions skip the RSA private op but still pay the full key
// schedule, so a hot session cache is exactly where the Figure 6
// outlier dominates the handshake work that remains.
TEST(ServerSim, ResumptionMakesKeySetupDominant)
{
    auto params = smallParams();
    params.loadFactors = {0.5};
    params.resumedFraction = 0.0;
    auto cold = ssl::runServerSim(blowfishLikeRates(), params);
    params.resumedFraction = 0.9;
    auto hot = ssl::runServerSim(blowfishLikeRates(), params);
    EXPECT_NEAR(cold.resumedShare, 0.0, 1e-9);
    EXPECT_NEAR(hot.resumedShare, 0.9, 0.02);
    EXPECT_GT(hot.setupFraction, 1.2 * cold.setupFraction);
    EXPECT_LT(hot.handshakeFraction, cold.handshakeFraction);
    EXPECT_LT(hot.meanServiceCycles, cold.meanServiceCycles);
}

// The chain digest is a function of the chain cipher: different bulk
// ciphers produce different digests over the identical population, and
// the stream-cipher path (RC4) works too.
TEST(ServerSim, ChainDigestTracksCipher)
{
    auto params = smallParams();
    params.loadFactors = {0.5}; // digest is load-independent
    auto des = ssl::runServerSim(desLikeRates(), params);
    auto bf = ssl::runServerSim(blowfishLikeRates(), params);
    ServerRates rc4 = desLikeRates();
    rc4.cipher = crypto::CipherId::RC4;
    auto stream = ssl::runServerSim(rc4, params);
    EXPECT_NE(des.chainDigest, bf.chainDigest);
    EXPECT_NE(des.chainDigest, stream.chainDigest);
    EXPECT_NE(des.chainDigest, 0u);
}

} // namespace
