/** @file Tests for the SSL session cost model (Figure 2 shape). */

#include <gtest/gtest.h>

#include "ssl/session.hh"

namespace
{

using namespace cryptarch;
using ssl::SessionModel;
using ssl::SessionModelParams;

SessionModelParams
fastParams()
{
    SessionModelParams p;
    p.rsaBits = 512; // keep test-time key generation cheap
    return p;
}

// Accounting regression: the server's public-key bill is the CRT
// private operation alone. The client's rsaPublic multiplies are
// measured in their own counter window and must never inflate the
// server column (they used to: one reset covered both sides).
TEST(SessionModel, HandshakeBillsOnlyServerWork)
{
    auto ops = ssl::measureHandshakeOps(512);
    EXPECT_GT(ops.clientMulOps, 0u);
    EXPECT_GT(ops.serverMulOps, 2 * ops.clientMulOps);

    SessionModelParams p = fastParams();
    SessionModel model(crypto::CipherId::TripleDES, p);
    EXPECT_DOUBLE_EQ(model.handshakeCycles(),
                     static_cast<double>(ops.serverMulOps)
                         * p.cyclesPerWordMul);
    EXPECT_DOUBLE_EQ(model.clientHandshakeCycles(),
                     static_cast<double>(ops.clientMulOps)
                         * p.cyclesPerWordMul);
}

// Accounting regression: the reported cycles/byte is the marginal
// slope between two probes, so it cannot depend on which probe sizes
// were used — the old single-probe rate folded the one-time kernel
// prologue into the rate and shrank as the probe grew.
TEST(SessionModel, BulkRateIsProbeSizeInvariant)
{
    SessionModelParams a = fastParams(); // default 2048/4096 probes
    SessionModelParams b = fastParams();
    b.probeBytesLo = 4096;
    b.probeBytesHi = 8192;
    SessionModel ma(crypto::CipherId::TripleDES, a);
    SessionModel mb(crypto::CipherId::TripleDES, b);
    EXPECT_NEAR(mb.bulkCyclesPerByte() / ma.bulkCyclesPerByte(), 1.0,
                0.01);
    EXPECT_GT(ma.prologueCycles(), 0.0);
    // The prologue is one-time work, a fraction of a 2 KB probe.
    EXPECT_LT(ma.prologueCycles(),
              ma.bulkCyclesPerByte() * 2048);
}

// Golden cycle fractions for the deterministic 512-bit/3DES model.
// The bands are ±0.03 absolute: wide enough for timing-model tuning,
// tight enough to catch an accounting regression (re-billing the
// client's public op to the server moves the 4 KB public fraction by
// ~+0.02; folding the prologue back into the rate moves the private
// fraction at every length).
TEST(SessionModel, GoldenCycleFractions)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    auto c4 = model.cost(4096);
    EXPECT_NEAR(c4.publicFraction(), 0.210, 0.03);
    EXPECT_NEAR(c4.privateFraction(), 0.343, 0.03);
    EXPECT_NEAR(c4.otherFraction(), 0.447, 0.03);
    auto c32 = model.cost(32768);
    EXPECT_NEAR(c32.publicFraction(), 0.061, 0.03);
    EXPECT_NEAR(c32.privateFraction(), 0.780, 0.03);
    EXPECT_NEAR(c32.otherFraction(), 0.158, 0.03);
}

TEST(SessionModel, FractionsSumToOne)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    for (size_t bytes : {1024u, 4096u, 32768u}) {
        auto c = model.cost(bytes);
        EXPECT_NEAR(c.publicFraction() + c.privateFraction()
                        + c.otherFraction(),
                    1.0, 1e-9);
        EXPECT_GT(c.publicKeyCycles, 0.0);
        EXPECT_GT(c.privateKeyCycles, 0.0);
        EXPECT_GT(c.otherCycles, 0.0);
    }
}

TEST(SessionModel, PublicKeyDominatesShortSessions)
{
    // Figure 2: for very short sessions the handshake is the story.
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    auto c = model.cost(256);
    EXPECT_GT(c.publicFraction(), c.privateFraction());
}

TEST(SessionModel, PrivateKeyShareGrowsWithLength)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    double prev = 0.0;
    for (size_t bytes = 1024; bytes <= 128 * 1024; bytes *= 2) {
        double frac = model.cost(bytes).privateFraction();
        EXPECT_GT(frac, prev) << bytes;
        prev = frac;
    }
    // By long sessions the symmetric cipher dominates the handshake.
    EXPECT_GT(model.cost(128 * 1024).privateFraction(), 0.4);
}

TEST(SessionModel, PublicShareShrinksWithLength)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    double prev = 1.0;
    for (size_t bytes = 1024; bytes <= 128 * 1024; bytes *= 2) {
        double frac = model.cost(bytes).publicFraction();
        EXPECT_LT(frac, prev) << bytes;
        prev = frac;
    }
}

TEST(SessionModel, FasterCipherLowersPrivateShare)
{
    SessionModel des(crypto::CipherId::TripleDES, fastParams());
    SessionModel rc4(crypto::CipherId::RC4, fastParams());
    EXPECT_LT(rc4.bulkCyclesPerByte(), des.bulkCyclesPerByte());
    EXPECT_LT(rc4.cost(32768).privateFraction(),
              des.cost(32768).privateFraction());
}

} // namespace
