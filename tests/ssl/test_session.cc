/** @file Tests for the SSL session cost model (Figure 2 shape). */

#include <gtest/gtest.h>

#include "ssl/session.hh"

namespace
{

using namespace cryptarch;
using ssl::SessionModel;
using ssl::SessionModelParams;

SessionModelParams
fastParams()
{
    SessionModelParams p;
    p.rsaBits = 512; // keep test-time key generation cheap
    return p;
}

TEST(SessionModel, FractionsSumToOne)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    for (size_t bytes : {1024u, 4096u, 32768u}) {
        auto c = model.cost(bytes);
        EXPECT_NEAR(c.publicFraction() + c.privateFraction()
                        + c.otherFraction(),
                    1.0, 1e-9);
        EXPECT_GT(c.publicKeyCycles, 0.0);
        EXPECT_GT(c.privateKeyCycles, 0.0);
        EXPECT_GT(c.otherCycles, 0.0);
    }
}

TEST(SessionModel, PublicKeyDominatesShortSessions)
{
    // Figure 2: for very short sessions the handshake is the story.
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    auto c = model.cost(256);
    EXPECT_GT(c.publicFraction(), c.privateFraction());
}

TEST(SessionModel, PrivateKeyShareGrowsWithLength)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    double prev = 0.0;
    for (size_t bytes = 1024; bytes <= 128 * 1024; bytes *= 2) {
        double frac = model.cost(bytes).privateFraction();
        EXPECT_GT(frac, prev) << bytes;
        prev = frac;
    }
    // By long sessions the symmetric cipher dominates the handshake.
    EXPECT_GT(model.cost(128 * 1024).privateFraction(), 0.4);
}

TEST(SessionModel, PublicShareShrinksWithLength)
{
    SessionModel model(crypto::CipherId::TripleDES, fastParams());
    double prev = 1.0;
    for (size_t bytes = 1024; bytes <= 128 * 1024; bytes *= 2) {
        double frac = model.cost(bytes).publicFraction();
        EXPECT_LT(frac, prev) << bytes;
        prev = frac;
    }
}

TEST(SessionModel, FasterCipherLowersPrivateShare)
{
    SessionModel des(crypto::CipherId::TripleDES, fastParams());
    SessionModel rc4(crypto::CipherId::RC4, fastParams());
    EXPECT_LT(rc4.bulkCyclesPerByte(), des.bulkCyclesPerByte());
    EXPECT_LT(rc4.cost(32768).privateFraction(),
              des.cost(32768).privateFraction());
}

} // namespace
