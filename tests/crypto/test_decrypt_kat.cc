/**
 * @file
 * Decryption known-answer tests: every published encryption vector in
 * the suite, run backwards through decryptBlock. Complements the
 * roundtrip tests by pinning the inverse ciphers to external truth.
 */

#include <gtest/gtest.h>

#include "crypto/blowfish.hh"
#include "crypto/des.hh"
#include "crypto/rc6.hh"
#include "crypto/rijndael.hh"
#include "crypto/twofish.hh"
#include "util/hex.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;

template <typename Cipher>
std::string
decryptHex(const std::string &key_hex, const std::string &ct_hex)
{
    Cipher cipher;
    cipher.setKey(fromHex(key_hex));
    auto ct = fromHex(ct_hex);
    std::vector<uint8_t> pt(ct.size());
    cipher.decryptBlock(ct.data(), pt.data());
    return toHex(pt);
}

TEST(DecryptKat, BlowfishZero)
{
    EXPECT_EQ(decryptHex<Blowfish>("0000000000000000",
                                   "4ef997456198dd78"),
              "0000000000000000");
}

TEST(DecryptKat, BlowfishOnes)
{
    EXPECT_EQ(decryptHex<Blowfish>("ffffffffffffffff",
                                   "51866fd5b85ecb8a"),
              "ffffffffffffffff");
}

TEST(DecryptKat, Rc6SpecVectors)
{
    EXPECT_EQ(decryptHex<Rc6>("00000000000000000000000000000000",
                              "8fc3a53656b1f778c129df4e9848a41e"),
              "00000000000000000000000000000000");
    EXPECT_EQ(decryptHex<Rc6>("0123456789abcdef0112233445566778",
                              "524e192f4715c6231f51f6367ea43f18"),
              "02132435465768798a9bacbdcedfe0f1");
}

TEST(DecryptKat, RijndaelFips197)
{
    EXPECT_EQ(decryptHex<Rijndael>("000102030405060708090a0b0c0d0e0f",
                                   "69c4e0d86a7b0430d8cdb78070b4c55a"),
              "00112233445566778899aabbccddeeff");
    EXPECT_EQ(decryptHex<Rijndael>("00000000000000000000000000000000",
                                   "66e94bd4ef8a2c3b884cfa59ca342b2e"),
              "00000000000000000000000000000000");
}

TEST(DecryptKat, TwofishIteratedTable)
{
    EXPECT_EQ(decryptHex<Twofish>("00000000000000000000000000000000",
                                  "9f589f5cf6122c32b6bfec2f2ae8c35a"),
              "00000000000000000000000000000000");
    EXPECT_EQ(decryptHex<Twofish>("9f589f5cf6122c32b6bfec2f2ae8c35a",
                                  "019f9809de1711858faac3a3ba20fbc3"),
              "d491db16e7b1c39e86cb086b789f5419");
}

TEST(DecryptKat, DesClassicVector)
{
    Des des;
    auto key = fromHex("133457799BBCDFF1");
    des.setKey(std::span<const uint8_t, 8>(key.data(), 8));
    EXPECT_EQ(des.decrypt(0x85E813540F0AB405ull), 0x0123456789ABCDEFull);
}

} // namespace
