/** @file Tests pinning the cipher catalog to paper Table 1. */

#include <gtest/gtest.h>

#include "crypto/cipher.hh"

namespace
{

using namespace cryptarch::crypto;

TEST(Catalog, HasAllEightCiphers)
{
    EXPECT_EQ(cipherCatalog().size(), 8u);
}

TEST(Catalog, Table1BlockSizes)
{
    EXPECT_EQ(cipherInfo(CipherId::TripleDES).blockBytes, 8u);
    EXPECT_EQ(cipherInfo(CipherId::Blowfish).blockBytes, 8u);
    EXPECT_EQ(cipherInfo(CipherId::IDEA).blockBytes, 8u);
    EXPECT_EQ(cipherInfo(CipherId::MARS).blockBytes, 16u);
    EXPECT_EQ(cipherInfo(CipherId::RC4).blockBytes, 1u);
    EXPECT_EQ(cipherInfo(CipherId::RC6).blockBytes, 16u);
    EXPECT_EQ(cipherInfo(CipherId::Rijndael).blockBytes, 16u);
    EXPECT_EQ(cipherInfo(CipherId::Twofish).blockBytes, 16u);
}

TEST(Catalog, Table1Rounds)
{
    EXPECT_EQ(cipherInfo(CipherId::TripleDES).rounds, 48u);
    EXPECT_EQ(cipherInfo(CipherId::Blowfish).rounds, 16u);
    EXPECT_EQ(cipherInfo(CipherId::IDEA).rounds, 8u);
    EXPECT_EQ(cipherInfo(CipherId::MARS).rounds, 16u);
    EXPECT_EQ(cipherInfo(CipherId::RC4).rounds, 1u);
    EXPECT_EQ(cipherInfo(CipherId::RC6).rounds, 18u);
    EXPECT_EQ(cipherInfo(CipherId::Rijndael).rounds, 10u);
    EXPECT_EQ(cipherInfo(CipherId::Twofish).rounds, 16u);
}

TEST(Catalog, OnlyRc4IsStream)
{
    for (const auto &info : cipherCatalog())
        EXPECT_EQ(info.isStream, info.id == CipherId::RC4) << info.name;
}

TEST(Catalog, FactoriesMatchIds)
{
    for (const auto &info : cipherCatalog()) {
        if (info.isStream) {
            auto sc = makeStreamCipher(info.id);
            EXPECT_EQ(sc->info().name, info.name);
            EXPECT_THROW(makeBlockCipher(info.id), std::invalid_argument);
        } else {
            auto bc = makeBlockCipher(info.id);
            EXPECT_EQ(bc->info().name, info.name);
            EXPECT_THROW(makeStreamCipher(info.id), std::invalid_argument);
        }
    }
}

TEST(Catalog, SetupEstimatesArePositive)
{
    for (const auto &info : cipherCatalog()) {
        uint64_t est = info.isStream
            ? makeStreamCipher(info.id)->setupOpEstimate()
            : makeBlockCipher(info.id)->setupOpEstimate();
        EXPECT_GT(est, 0u) << info.name;
    }
}

// Figure 6 sanity: Blowfish setup must dwarf every other cipher's.
TEST(Catalog, BlowfishSetupDominates)
{
    uint64_t blowfish =
        makeBlockCipher(CipherId::Blowfish)->setupOpEstimate();
    for (const auto &info : cipherCatalog()) {
        if (info.id == CipherId::Blowfish || info.isStream)
            continue;
        EXPECT_GT(blowfish,
                  3 * makeBlockCipher(info.id)->setupOpEstimate())
            << info.name;
    }
}

} // namespace
