/** @file Known-answer and property tests for DES / 3DES. */

#include <gtest/gtest.h>

#include "crypto/des.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

uint64_t
desEncryptHex(const std::string &key_hex, uint64_t pt)
{
    Des des;
    auto key = fromHex(key_hex);
    des.setKey(std::span<const uint8_t, 8>(key.data(), 8));
    return des.encrypt(pt);
}

// Classic worked example (Stallings / FIPS walkthrough).
TEST(Des, KnownAnswerClassic)
{
    EXPECT_EQ(desEncryptHex("133457799BBCDFF1", 0x0123456789ABCDEFull),
              0x85E813540F0AB405ull);
}

// NBS validation pair exercising IP and the E expansion.
TEST(Des, KnownAnswerNbs)
{
    EXPECT_EQ(desEncryptHex("0101010101010101", 0x95F8A5E5DD31D900ull),
              0x8000000000000000ull);
}

TEST(Des, DecryptInvertsEncrypt)
{
    Des des;
    auto key = fromHex("0123456789abcdef");
    des.setKey(std::span<const uint8_t, 8>(key.data(), 8));
    Xorshift64 rng(1);
    for (int i = 0; i < 100; i++) {
        uint64_t pt = rng.next();
        EXPECT_EQ(des.decrypt(des.encrypt(pt)), pt);
    }
}

// DES complement property: E_~k(~p) == ~E_k(p).
TEST(Des, ComplementProperty)
{
    auto key = fromHex("133457799BBCDFF1");
    auto ckey = key;
    for (auto &b : ckey)
        b = static_cast<uint8_t>(~b);
    Des des, cdes;
    des.setKey(std::span<const uint8_t, 8>(key.data(), 8));
    cdes.setKey(std::span<const uint8_t, 8>(ckey.data(), 8));
    Xorshift64 rng(2);
    for (int i = 0; i < 20; i++) {
        uint64_t pt = rng.next();
        EXPECT_EQ(cdes.encrypt(~pt), ~des.encrypt(pt));
    }
}

// All-ones weak key: encryption is its own inverse.
TEST(Des, WeakKeySelfInverse)
{
    Des des;
    auto key = fromHex("FFFFFFFFFFFFFFFF");
    des.setKey(std::span<const uint8_t, 8>(key.data(), 8));
    Xorshift64 rng(3);
    for (int i = 0; i < 20; i++) {
        uint64_t pt = rng.next();
        EXPECT_EQ(des.encrypt(des.encrypt(pt)), pt);
    }
}

TEST(Des, FinalPermutationInvertsInitial)
{
    Xorshift64 rng(4);
    for (int i = 0; i < 100; i++) {
        uint64_t v = rng.next();
        EXPECT_EQ(Des::finalPermutation(Des::initialPermutation(v)), v);
        EXPECT_EQ(Des::initialPermutation(Des::finalPermutation(v)), v);
    }
}

// The SP-box formulation of the f function must match a direct
// bit-by-bit evaluation; spot-check its linear-in-key-XOR structure.
TEST(Des, FeistelKeyChunkSensitivity)
{
    // Changing any 6-bit key chunk must change the output for almost
    // all inputs (S-boxes have no fixed distinguishing value).
    Xorshift64 rng(5);
    for (int chunk = 0; chunk < 8; chunk++) {
        uint64_t k = rng.next() & 0xFFFFFFFFFFFFull;
        uint64_t k2 = k ^ (0x21ull << (42 - 6 * chunk));
        int diffs = 0;
        for (int i = 0; i < 50; i++) {
            uint32_t half = rng.next32();
            if (Des::feistel(half, k) != Des::feistel(half, k2))
                diffs++;
        }
        // Distinct S-box inputs collide on ~5% of values (each nibble
        // appears four times per box), so demand most-but-not-all.
        EXPECT_GT(diffs, 40) << "chunk " << chunk;
    }
}

TEST(TripleDes, DegeneratesToSingleDesWithRepeatedKey)
{
    auto key8 = fromHex("0123456789abcdef");
    std::vector<uint8_t> key24;
    for (int i = 0; i < 3; i++)
        key24.insert(key24.end(), key8.begin(), key8.end());

    TripleDes tdes;
    tdes.setKey(key24);
    Des des;
    des.setKey(std::span<const uint8_t, 8>(key8.data(), 8));

    uint8_t pt[8] = {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
    uint8_t ct[8];
    tdes.encryptBlock(pt, ct);
    uint64_t expect = des.encrypt(0x0123456789ABCDEFull);
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(ct[i], static_cast<uint8_t>(expect >> (56 - 8 * i)));
}

TEST(TripleDes, Roundtrip)
{
    TripleDes tdes;
    auto key = fromHex("0123456789abcdef23456789abcdef01456789abcdef0123");
    tdes.setKey(key);
    Xorshift64 rng(6);
    for (int i = 0; i < 50; i++) {
        auto pt = rng.bytes(8);
        uint8_t ct[8], back[8];
        tdes.encryptBlock(pt.data(), ct);
        tdes.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 8), pt);
    }
}

TEST(TripleDes, RejectsBadKeySize)
{
    TripleDes tdes;
    auto key = fromHex("0123456789abcdef");
    EXPECT_THROW(tdes.setKey(key), std::invalid_argument);
}

} // namespace
