/** @file Tests for ECB and CTR modes, plus a CBC known-answer vector. */

#include <gtest/gtest.h>

#include "crypto/cbc.hh"
#include "crypto/modes.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

std::vector<CipherId>
blockCipherIds()
{
    std::vector<CipherId> ids;
    for (const auto &info : cipherCatalog()) {
        if (!info.isStream)
            ids.push_back(info.id);
    }
    return ids;
}

// NIST SP 800-38A F.2.1: AES-128-CBC encryption, first block.
TEST(CbcKat, Sp800_38aAes128)
{
    auto cipher = makeBlockCipher(CipherId::Rijndael);
    cipher->setKey(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    auto iv = fromHex("000102030405060708090a0b0c0d0e0f");
    auto pt = fromHex("6bc1bee22e409f96e93d7e117393172a");
    CbcEncryptor enc(*cipher, iv);
    EXPECT_EQ(toHex(enc.encrypt(pt)),
              "7649abac8119b246cee98e9b12e9197d");
}

// NIST SP 800-38A F.5.1: AES-128-CTR uses a full 16-byte initial
// counter; our CTR fixes the low 4 bytes as the counter, so this test
// checks the construction against a manual ECB-of-counter reference
// instead of the NIST stream.
TEST(Ctr, MatchesManualCounterEncryption)
{
    auto cipher = makeBlockCipher(CipherId::Rijndael);
    Xorshift64 rng(1);
    cipher->setKey(rng.bytes(16));
    auto nonce = rng.bytes(12);
    auto pt = rng.bytes(48);

    CtrCipher ctr(*cipher, nonce);
    auto ct = ctr.process(pt);

    for (uint32_t block = 0; block < 3; block++) {
        std::vector<uint8_t> counter_block = nonce;
        counter_block.resize(16, 0);
        counter_block[12] = static_cast<uint8_t>(block >> 24);
        counter_block[13] = static_cast<uint8_t>(block >> 16);
        counter_block[14] = static_cast<uint8_t>(block >> 8);
        counter_block[15] = static_cast<uint8_t>(block);
        uint8_t ks[16];
        cipher->encryptBlock(counter_block.data(), ks);
        for (int i = 0; i < 16; i++) {
            EXPECT_EQ(ct[16 * block + i], pt[16 * block + i] ^ ks[i])
                << "block " << block << " byte " << i;
        }
    }
}

class ModesAllCiphers : public ::testing::TestWithParam<CipherId>
{
  protected:
    void
    SetUp() override
    {
        cipher = makeBlockCipher(GetParam());
        Xorshift64 rng(7 + static_cast<int>(GetParam()));
        cipher->setKey(rng.bytes(cipher->info().keyBits / 8));
        bs = cipher->info().blockBytes;
    }

    std::unique_ptr<BlockCipher> cipher;
    size_t bs = 0;
};

TEST_P(ModesAllCiphers, EcbRoundtrip)
{
    Xorshift64 rng(11);
    auto pt = rng.bytes(bs * 9);
    EcbEncryptor enc(*cipher);
    EcbDecryptor dec(*cipher);
    auto ct = enc.encrypt(pt);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(dec.decrypt(ct), pt);
}

TEST_P(ModesAllCiphers, EcbLeaksEqualBlocksCbcDoesNot)
{
    // The textbook contrast: identical plaintext blocks produce
    // identical ECB ciphertext blocks but distinct CBC blocks.
    std::vector<uint8_t> pt(bs * 2, 0x42);
    EcbEncryptor ecb(*cipher);
    auto ect = ecb.encrypt(pt);
    EXPECT_EQ(std::vector<uint8_t>(ect.begin(), ect.begin() + bs),
              std::vector<uint8_t>(ect.begin() + bs, ect.end()));

    Xorshift64 rng(12);
    auto iv = rng.bytes(bs);
    CbcEncryptor cbc(*cipher, iv);
    auto cct = cbc.encrypt(pt);
    EXPECT_NE(std::vector<uint8_t>(cct.begin(), cct.begin() + bs),
              std::vector<uint8_t>(cct.begin() + bs, cct.end()));
}

TEST_P(ModesAllCiphers, CtrRoundtripAndPartialBlocks)
{
    Xorshift64 rng(13);
    auto nonce = rng.bytes(bs - 4);
    auto pt = rng.bytes(bs * 5 + 3); // ragged tail

    CtrCipher enc(*cipher, nonce);
    auto ct = enc.process(pt);
    EXPECT_NE(ct, pt);

    CtrCipher dec(*cipher, nonce);
    EXPECT_EQ(dec.process(ct), pt);
}

TEST_P(ModesAllCiphers, CtrIsPositionStateful)
{
    Xorshift64 rng(14);
    auto nonce = rng.bytes(bs - 4);
    auto pt = rng.bytes(64);
    CtrCipher whole(*cipher, nonce);
    auto one = whole.process(pt);
    CtrCipher split(*cipher, nonce);
    std::vector<uint8_t> two(64);
    split.process(pt.data(), two.data(), 10);
    split.process(pt.data() + 10, two.data() + 10, 54);
    EXPECT_EQ(one, two);
}

INSTANTIATE_TEST_SUITE_P(
    AllBlockCiphers, ModesAllCiphers,
    ::testing::ValuesIn(blockCipherIds()),
    [](const ::testing::TestParamInfo<CipherId> &info) {
        return cipherInfo(info.param).name;
    });

TEST(Modes, RejectionCases)
{
    auto cipher = makeBlockCipher(CipherId::Blowfish);
    Xorshift64 rng(15);
    cipher->setKey(rng.bytes(16));
    EcbEncryptor ecb(*cipher);
    auto ragged = rng.bytes(12);
    EXPECT_THROW(ecb.encrypt(ragged), std::invalid_argument);
    auto bad_nonce = rng.bytes(3);
    EXPECT_THROW(CtrCipher(*cipher, bad_nonce), std::invalid_argument);
}

} // namespace
