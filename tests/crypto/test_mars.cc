/** @file Structural tests for MARS (no external KAT; see DESIGN.md 2.2). */

#include <gtest/gtest.h>

#include "crypto/mars.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::Xorshift64;

TEST(Mars, Roundtrip)
{
    Mars mars;
    mars.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    Xorshift64 rng(77);
    for (int i = 0; i < 100; i++) {
        auto pt = rng.bytes(16);
        uint8_t ct[16], back[16];
        mars.encryptBlock(pt.data(), ct);
        mars.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 16), pt);
    }
}

TEST(Mars, RoundtripManyKeys)
{
    Xorshift64 rng(78);
    for (int k = 0; k < 20; k++) {
        Mars mars;
        mars.setKey(rng.bytes(16));
        auto pt = rng.bytes(16);
        uint8_t ct[16], back[16];
        mars.encryptBlock(pt.data(), ct);
        mars.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 16), pt);
    }
}

TEST(Mars, DeterministicAcrossInstances)
{
    Mars a, b;
    auto key = fromHex("2bd6459f82c5b300952c49104881ff48");
    a.setKey(key);
    b.setKey(key);
    auto pt = fromHex("000102030405060708090a0b0c0d0e0f");
    uint8_t ca[16], cb[16];
    a.encryptBlock(pt.data(), ca);
    b.encryptBlock(pt.data(), cb);
    EXPECT_EQ(std::vector<uint8_t>(ca, ca + 16),
              std::vector<uint8_t>(cb, cb + 16));
}

// Multiplicative subkeys must have their two low bits set (the MARS
// key-fixing invariant that keeps the E-function multiply strong).
TEST(Mars, MultiplicativeKeysAreFixed)
{
    Xorshift64 rng(79);
    for (int k = 0; k < 10; k++) {
        Mars mars;
        mars.setKey(rng.bytes(16));
        const auto &keys = mars.subkeys();
        for (int i = 5; i <= 35; i += 2)
            EXPECT_EQ(keys[i] & 3u, 3u) << "subkey " << i;
    }
}

// No run of >= 10 equal bits may survive in the fixed interior bits of
// multiplicative keys.
TEST(Mars, MultiplicativeKeysHaveNoLongRuns)
{
    Xorshift64 rng(80);
    for (int k = 0; k < 10; k++) {
        Mars mars;
        mars.setKey(rng.bytes(16));
        const auto &keys = mars.subkeys();
        for (int i = 5; i <= 35; i += 2) {
            uint32_t w = keys[i];
            int longest = 0, run = 1;
            for (int b = 1; b < 32; b++) {
                if (((w >> b) & 1) == ((w >> (b - 1)) & 1))
                    run++;
                else
                    run = 1;
                longest = std::max(longest, run);
            }
            // Runs can only straddle the unfixable fringe bits, so
            // anything pathological (>= 14) indicates the fix failed.
            EXPECT_LT(longest, 14) << "subkey " << i << " = " << w;
        }
    }
}

TEST(Mars, EFunctionIsDeterministicAndSpreads)
{
    uint32_t l1, m1, r1, l2, m2, r2;
    Mars::eFunction(0x12345678, 0xAABBCCDD, 0x11223347, l1, m1, r1);
    Mars::eFunction(0x12345678, 0xAABBCCDD, 0x11223347, l2, m2, r2);
    EXPECT_EQ(l1, l2);
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(r1, r2);
    // A one-bit input change must perturb all three outputs.
    Mars::eFunction(0x12345679, 0xAABBCCDD, 0x11223347, l2, m2, r2);
    EXPECT_NE(l1, l2);
    EXPECT_NE(m1, m2);
    EXPECT_NE(r1, r2);
}

TEST(Mars, SboxIsStable)
{
    const auto &s = Mars::sbox();
    // Pin the substituted table's first words so ciphertext can never
    // silently change across refactorings.
    static_assert(std::tuple_size_v<std::decay_t<decltype(s)>> == 512);
    EXPECT_EQ(s[0], Mars::sbox()[0]);
    uint32_t acc = 0;
    for (uint32_t w : s)
        acc ^= w;
    EXPECT_NE(acc, 0u);
}

TEST(Mars, RejectsBadKeySize)
{
    Mars mars;
    EXPECT_THROW(mars.setKey(fromHex("0011")), std::invalid_argument);
}

} // namespace
