/** @file Known-answer and property tests for RC6. */

#include <gtest/gtest.h>

#include "crypto/rc6.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

std::string
rc6Encrypt(const std::string &key_hex, const std::string &pt_hex)
{
    Rc6 rc6;
    rc6.setKey(fromHex(key_hex));
    auto pt = fromHex(pt_hex);
    uint8_t ct[16];
    rc6.encryptBlock(pt.data(), ct);
    return toHex(ct, 16);
}

// Test vectors from the RC6 AES submission specification.
TEST(Rc6, KnownAnswerZeroKey)
{
    EXPECT_EQ(rc6Encrypt("00000000000000000000000000000000",
                         "00000000000000000000000000000000"),
              "8fc3a53656b1f778c129df4e9848a41e");
}

TEST(Rc6, KnownAnswerSpecVector)
{
    EXPECT_EQ(rc6Encrypt("0123456789abcdef0112233445566778",
                         "02132435465768798a9bacbdcedfe0f1"),
              "524e192f4715c6231f51f6367ea43f18");
}

TEST(Rc6, Roundtrip)
{
    Rc6 rc6;
    rc6.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    Xorshift64 rng(44);
    for (int i = 0; i < 100; i++) {
        auto pt = rng.bytes(16);
        uint8_t ct[16], back[16];
        rc6.encryptBlock(pt.data(), ct);
        rc6.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 16), pt);
    }
}

TEST(Rc6, RoundKeysDependOnKey)
{
    Rc6 a, b;
    a.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    b.setKey(fromHex("100102030405060708090a0b0c0d0e0f"));
    EXPECT_NE(a.roundKeys(), b.roundKeys());
}

TEST(Rc6, RejectsBadKeySize)
{
    Rc6 rc6;
    EXPECT_THROW(rc6.setKey(fromHex("00")), std::invalid_argument);
}

} // namespace
