/** @file Known-answer and property tests for Rijndael (AES-128). */

#include <gtest/gtest.h>

#include "crypto/rijndael.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

std::string
aesEncrypt(const std::string &key_hex, const std::string &pt_hex)
{
    Rijndael aes;
    aes.setKey(fromHex(key_hex));
    auto pt = fromHex(pt_hex);
    uint8_t ct[16];
    aes.encryptBlock(pt.data(), ct);
    return toHex(ct, 16);
}

// FIPS-197 Appendix C.1.
TEST(Rijndael, KnownAnswerFips197)
{
    EXPECT_EQ(aesEncrypt("000102030405060708090a0b0c0d0e0f",
                         "00112233445566778899aabbccddeeff"),
              "69c4e0d86a7b0430d8cdb78070b4c55a");
}

// All-zero key and block (AESAVS KAT).
TEST(Rijndael, KnownAnswerZero)
{
    EXPECT_EQ(aesEncrypt("00000000000000000000000000000000",
                         "00000000000000000000000000000000"),
              "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

TEST(Rijndael, DecryptKnownAnswer)
{
    Rijndael aes;
    aes.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    auto ct = fromHex("69c4e0d86a7b0430d8cdb78070b4c55a");
    uint8_t pt[16];
    aes.decryptBlock(ct.data(), pt);
    EXPECT_EQ(toHex(pt, 16), "00112233445566778899aabbccddeeff");
}

TEST(Rijndael, Roundtrip)
{
    Rijndael aes;
    aes.setKey(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    Xorshift64 rng(55);
    for (int i = 0; i < 100; i++) {
        auto pt = rng.bytes(16);
        uint8_t ct[16], back[16];
        aes.encryptBlock(pt.data(), ct);
        aes.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 16), pt);
    }
}

// The derived S-box must match its defining spot values.
TEST(Rijndael, SboxSpotValues)
{
    const auto &s = Rijndael::sbox();
    EXPECT_EQ(s[0x00], 0x63);
    EXPECT_EQ(s[0x01], 0x7C);
    EXPECT_EQ(s[0x53], 0xED);
    EXPECT_EQ(s[0xFF], 0x16);
}

TEST(Rijndael, InvSboxInverts)
{
    const auto &s = Rijndael::sbox();
    const auto &is = Rijndael::invSbox();
    for (int x = 0; x < 256; x++) {
        EXPECT_EQ(is[s[x]], x);
        EXPECT_EQ(s[is[x]], x);
    }
}

// Key expansion spot check: FIPS-197 A.1 (key 2b7e1516...).
TEST(Rijndael, KeyExpansionFips197)
{
    Rijndael aes;
    aes.setKey(fromHex("2b7e151628aed2a6abf7158809cf4f3c"));
    const auto &ek = aes.encKeys();
    EXPECT_EQ(ek[0], 0x2b7e1516u);
    EXPECT_EQ(ek[4], 0xa0fafe17u);
    EXPECT_EQ(ek[5], 0x88542cb1u);
    EXPECT_EQ(ek[43], 0xb6630ca6u);
}

// T-tables must reproduce the naive round function contribution.
TEST(Rijndael, EncTablesAreRotationsOfEachOther)
{
    const auto &te = Rijndael::encTables();
    for (int x = 0; x < 256; x++) {
        uint32_t w = te[0][x];
        for (int j = 1; j < 4; j++) {
            uint32_t expect = (w >> (8 * j)) | (w << (32 - 8 * j));
            EXPECT_EQ(te[j][x], expect);
        }
    }
}

TEST(Rijndael, RejectsBadKeySize)
{
    Rijndael aes;
    EXPECT_THROW(aes.setKey(fromHex("00112233")), std::invalid_argument);
}

} // namespace
