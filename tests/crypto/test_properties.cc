/**
 * @file
 * Parameterized property tests shared by every block cipher: roundtrip,
 * plaintext/key avalanche (the paper's definition of strong diffusion:
 * any input change perturbs each output bit with probability ~50%), and
 * key sensitivity.
 */

#include <gtest/gtest.h>

#include <bit>

#include "crypto/cipher.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::Xorshift64;

std::vector<CipherId>
blockCipherIds()
{
    std::vector<CipherId> ids;
    for (const auto &info : cipherCatalog()) {
        if (!info.isStream)
            ids.push_back(info.id);
    }
    return ids;
}

int
bitDifference(const std::vector<uint8_t> &a, const std::vector<uint8_t> &b)
{
    int bits = 0;
    for (size_t i = 0; i < a.size(); i++)
        bits += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
    return bits;
}

class BlockCipherProperties : public ::testing::TestWithParam<CipherId>
{
  protected:
    void
    SetUp() override
    {
        cipher = makeBlockCipher(GetParam());
        info = &cipher->info();
    }

    std::vector<uint8_t>
    encrypt(const std::vector<uint8_t> &pt)
    {
        std::vector<uint8_t> ct(info->blockBytes);
        cipher->encryptBlock(pt.data(), ct.data());
        return ct;
    }

    std::unique_ptr<BlockCipher> cipher;
    const CipherInfo *info = nullptr;
};

TEST_P(BlockCipherProperties, RoundtripRandomKeys)
{
    Xorshift64 rng(201);
    for (int trial = 0; trial < 25; trial++) {
        cipher->setKey(rng.bytes(info->keyBits / 8));
        auto pt = rng.bytes(info->blockBytes);
        auto ct = encrypt(pt);
        std::vector<uint8_t> back(info->blockBytes);
        cipher->decryptBlock(ct.data(), back.data());
        EXPECT_EQ(back, pt);
    }
}

TEST_P(BlockCipherProperties, EncryptionIsNotIdentity)
{
    Xorshift64 rng(202);
    cipher->setKey(rng.bytes(info->keyBits / 8));
    auto pt = rng.bytes(info->blockBytes);
    EXPECT_NE(encrypt(pt), pt);
}

// Plaintext avalanche: flipping any single input bit flips ~50% of
// output bits. We accept [25%, 75%] averaged over trials per flipped
// bit position, a loose band that still catches broken diffusion.
TEST_P(BlockCipherProperties, PlaintextAvalanche)
{
    Xorshift64 rng(203);
    cipher->setKey(rng.bytes(info->keyBits / 8));
    const int block_bits = info->blockBytes * 8;
    for (int bit = 0; bit < block_bits; bit += 7) {
        int total = 0;
        const int trials = 12;
        for (int t = 0; t < trials; t++) {
            auto pt = rng.bytes(info->blockBytes);
            auto ct_a = encrypt(pt);
            pt[bit / 8] ^= static_cast<uint8_t>(1 << (bit % 8));
            auto ct_b = encrypt(pt);
            total += bitDifference(ct_a, ct_b);
        }
        double avg = static_cast<double>(total) / trials;
        EXPECT_GT(avg, 0.25 * block_bits) << "bit " << bit;
        EXPECT_LT(avg, 0.75 * block_bits) << "bit " << bit;
    }
}

// Key avalanche: flipping any single key bit changes the ciphertext of
// a fixed plaintext substantially.
TEST_P(BlockCipherProperties, KeyAvalanche)
{
    Xorshift64 rng(204);
    auto key = rng.bytes(info->keyBits / 8);
    auto pt = rng.bytes(info->blockBytes);
    cipher->setKey(key);
    auto base = encrypt(pt);
    const int block_bits = info->blockBytes * 8;
    for (unsigned bit = 0; bit < info->keyBits; bit += 13) {
        // DES ignores the parity bit of each key byte (the LSB under
        // big-endian loading), so skip those for 3DES.
        if (GetParam() == CipherId::TripleDES && bit % 8 == 0)
            continue;
        auto flipped = key;
        flipped[bit / 8] ^= static_cast<uint8_t>(1 << (bit % 8));
        cipher->setKey(flipped);
        auto ct = encrypt(pt);
        int diff = bitDifference(base, ct);
        EXPECT_GT(diff, block_bits / 4) << "key bit " << bit;
        EXPECT_LT(diff, 3 * block_bits / 4) << "key bit " << bit;
    }
}

// Two different random keys must produce different ciphertext.
TEST_P(BlockCipherProperties, KeySensitivity)
{
    Xorshift64 rng(205);
    auto pt = rng.bytes(info->blockBytes);
    cipher->setKey(rng.bytes(info->keyBits / 8));
    auto ct_a = encrypt(pt);
    cipher->setKey(rng.bytes(info->keyBits / 8));
    auto ct_b = encrypt(pt);
    EXPECT_NE(ct_a, ct_b);
}

// Decrypting with the wrong key must not recover the plaintext.
TEST_P(BlockCipherProperties, WrongKeyFailsToDecrypt)
{
    Xorshift64 rng(206);
    auto pt = rng.bytes(info->blockBytes);
    cipher->setKey(rng.bytes(info->keyBits / 8));
    auto ct = encrypt(pt);
    cipher->setKey(rng.bytes(info->keyBits / 8));
    std::vector<uint8_t> back(info->blockBytes);
    cipher->decryptBlock(ct.data(), back.data());
    EXPECT_NE(back, pt);
}

INSTANTIATE_TEST_SUITE_P(
    AllBlockCiphers, BlockCipherProperties,
    ::testing::ValuesIn(blockCipherIds()),
    [](const ::testing::TestParamInfo<CipherId> &info) {
        return cipherInfo(info.param).name;
    });

} // namespace
