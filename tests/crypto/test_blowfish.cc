/** @file Known-answer and property tests for Blowfish. */

#include <gtest/gtest.h>

#include "crypto/blowfish.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

std::string
bfEncrypt(const std::string &key_hex, const std::string &pt_hex)
{
    Blowfish bf;
    bf.setKey(fromHex(key_hex));
    auto pt = fromHex(pt_hex);
    uint8_t ct[8];
    bf.encryptBlock(pt.data(), ct);
    return toHex(ct, 8);
}

// Schneier's published ECB test vectors. These transitively validate
// the pi-digit generator that builds the P/S tables.
TEST(Blowfish, KnownAnswerZero)
{
    EXPECT_EQ(bfEncrypt("0000000000000000", "0000000000000000"),
              "4ef997456198dd78");
}

TEST(Blowfish, KnownAnswerOnes)
{
    EXPECT_EQ(bfEncrypt("ffffffffffffffff", "ffffffffffffffff"),
              "51866fd5b85ecb8a");
}

TEST(Blowfish, KnownAnswerMixed)
{
    EXPECT_EQ(bfEncrypt("3000000000000000", "1000000000000001"),
              "7d856f9a613063f2");
    EXPECT_EQ(bfEncrypt("0123456789abcdef", "1111111111111111"),
              "61f9c3802281b096");
}

TEST(Blowfish, RoundtripWith128BitKey)
{
    Blowfish bf;
    bf.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    Xorshift64 rng(11);
    for (int i = 0; i < 50; i++) {
        auto pt = rng.bytes(8);
        uint8_t ct[8], back[8];
        bf.encryptBlock(pt.data(), ct);
        bf.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 8), pt);
    }
}

TEST(Blowfish, WordInterfaceMatchesByteInterface)
{
    Blowfish bf;
    bf.setKey(fromHex("00112233445566778899aabbccddeeff"));
    uint32_t l = 0x01234567, r = 0x89ABCDEF;
    uint8_t block[8] = {0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
    uint8_t ct[8];
    bf.encryptBlock(block, ct);
    bf.encryptWords(l, r);
    EXPECT_EQ(l, (uint32_t(ct[0]) << 24) | (uint32_t(ct[1]) << 16)
                  | (uint32_t(ct[2]) << 8) | ct[3]);
    EXPECT_EQ(r, (uint32_t(ct[4]) << 24) | (uint32_t(ct[5]) << 16)
                  | (uint32_t(ct[6]) << 8) | ct[7]);
}

TEST(Blowfish, ExpandedTablesDependOnKey)
{
    Blowfish a, b;
    a.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    b.setKey(fromHex("000102030405060708090a0b0c0d0e0e"));
    EXPECT_NE(a.pArray(), b.pArray());
    EXPECT_NE(a.sBoxes()[0], b.sBoxes()[0]);
}

TEST(Blowfish, RejectsBadKeySizes)
{
    Blowfish bf;
    EXPECT_THROW(bf.setKey(std::vector<uint8_t>{}), std::invalid_argument);
    EXPECT_THROW(bf.setKey(std::vector<uint8_t>(57, 0)),
                 std::invalid_argument);
}

} // namespace
