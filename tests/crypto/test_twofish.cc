/** @file Known-answer and property tests for Twofish. */

#include <gtest/gtest.h>

#include "crypto/twofish.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

std::string
tfEncrypt(const std::string &key_hex, const std::string &pt_hex)
{
    Twofish tf;
    tf.setKey(fromHex(key_hex));
    auto pt = fromHex(pt_hex);
    uint8_t ct[16];
    tf.encryptBlock(pt.data(), ct);
    return toHex(ct, 16);
}

// Twofish paper, 128-bit key iterated test: I=1.
TEST(Twofish, KnownAnswerZero)
{
    EXPECT_EQ(tfEncrypt("00000000000000000000000000000000",
                        "00000000000000000000000000000000"),
              "9f589f5cf6122c32b6bfec2f2ae8c35a");
}

// Iterated table tests (ecb_tbl.txt chaining: KEY(i+1) = CT(i-1),
// PT(i+1) = CT(i)). I=3 exercises a nonzero key and hence the h/g
// key-word orderings.
TEST(Twofish, KnownAnswerIterated)
{
    // I=2: zero key, PT = CT(1).
    EXPECT_EQ(tfEncrypt("00000000000000000000000000000000",
                        "9f589f5cf6122c32b6bfec2f2ae8c35a"),
              "d491db16e7b1c39e86cb086b789f5419");
    // I=3: KEY = CT(1), PT = CT(2).
    EXPECT_EQ(tfEncrypt("9f589f5cf6122c32b6bfec2f2ae8c35a",
                        "d491db16e7b1c39e86cb086b789f5419"),
              "019f9809de1711858faac3a3ba20fbc3");
}

TEST(Twofish, Roundtrip)
{
    Twofish tf;
    tf.setKey(fromHex("000102030405060708090a0b0c0d0e0f"));
    Xorshift64 rng(66);
    for (int i = 0; i < 100; i++) {
        auto pt = rng.bytes(16);
        uint8_t ct[16], back[16];
        tf.encryptBlock(pt.data(), ct);
        tf.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 16), pt);
    }
}

// The q permutations must be bijective.
TEST(Twofish, QTablesArePermutations)
{
    for (const auto *q : {&Twofish::q0(), &Twofish::q1()}) {
        std::array<bool, 256> seen{};
        for (uint8_t v : *q) {
            EXPECT_FALSE(seen[v]);
            seen[v] = true;
        }
    }
}

// Full-keying tables must reproduce g: the tables are XOR-separable by
// construction, so membership of each byte lane is what we verify via
// subkey-independent decompositions.
TEST(Twofish, GTablesAreXorSeparable)
{
    Twofish tf;
    tf.setKey(fromHex("0123456789abcdeffedcba9876543210"));
    const auto &gt = tf.gTables();
    // Each table's entry 0 contribution appears in every g value of a
    // word with that byte lane zero; check consistency on a sample.
    uint32_t g0 = gt[0][0] ^ gt[1][0] ^ gt[2][0] ^ gt[3][0];
    uint32_t g1 = gt[0][0xAB] ^ gt[1][0] ^ gt[2][0] ^ gt[3][0];
    EXPECT_EQ(g0 ^ g1, gt[0][0] ^ gt[0][0xAB]);
}

TEST(Twofish, SubkeysDependOnKey)
{
    Twofish a, b;
    a.setKey(fromHex("00000000000000000000000000000000"));
    b.setKey(fromHex("00000000000000000000000000000001"));
    EXPECT_NE(a.subkeys(), b.subkeys());
}

TEST(Twofish, RejectsBadKeySize)
{
    Twofish tf;
    EXPECT_THROW(tf.setKey(fromHex("00")), std::invalid_argument);
}

} // namespace
