/** @file Known-answer and property tests for RC4. */

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/rc4.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

std::string
rc4Process(const std::string &key_ascii, const std::string &pt_ascii)
{
    Rc4 rc4;
    std::vector<uint8_t> key(key_ascii.begin(), key_ascii.end());
    rc4.setKey(key);
    std::vector<uint8_t> pt(pt_ascii.begin(), pt_ascii.end());
    std::vector<uint8_t> ct(pt.size());
    rc4.process(pt.data(), ct.data(), pt.size());
    return toHex(ct);
}

// The three classic RC4 vectors.
TEST(Rc4, KnownAnswerKeyPlaintext)
{
    EXPECT_EQ(rc4Process("Key", "Plaintext"), "bbf316e8d940af0ad3");
}

TEST(Rc4, KnownAnswerWikipedia)
{
    EXPECT_EQ(rc4Process("Wiki", "pedia"), "1021bf0420");
}

TEST(Rc4, KnownAnswerAttackAtDawn)
{
    EXPECT_EQ(rc4Process("Secret", "Attack at dawn"),
              "45a01f645fc35b383552544b9bf5");
}

TEST(Rc4, EncryptTwiceIsIdentity)
{
    Xorshift64 rng(33);
    auto key = rng.bytes(16);
    auto pt = rng.bytes(1000);
    Rc4 a, b;
    a.setKey(key);
    b.setKey(key);
    std::vector<uint8_t> ct(pt.size()), back(pt.size());
    a.process(pt.data(), ct.data(), pt.size());
    b.process(ct.data(), back.data(), ct.size());
    EXPECT_EQ(back, pt);
}

TEST(Rc4, StreamIsPositionDependent)
{
    // Processing in two chunks must equal processing in one call.
    Xorshift64 rng(34);
    auto key = rng.bytes(16);
    auto pt = rng.bytes(256);
    Rc4 whole, split;
    whole.setKey(key);
    split.setKey(key);
    std::vector<uint8_t> a(pt.size()), b(pt.size());
    whole.process(pt.data(), a.data(), pt.size());
    split.process(pt.data(), b.data(), 100);
    split.process(pt.data() + 100, b.data() + 100, pt.size() - 100);
    EXPECT_EQ(a, b);
}

TEST(Rc4, SetKeyResetsState)
{
    Xorshift64 rng(35);
    auto key = rng.bytes(16);
    auto pt = rng.bytes(64);
    Rc4 rc4;
    rc4.setKey(key);
    std::vector<uint8_t> first(pt.size()), second(pt.size());
    rc4.process(pt.data(), first.data(), pt.size());
    rc4.setKey(key);
    rc4.process(pt.data(), second.data(), pt.size());
    EXPECT_EQ(first, second);
}

TEST(Rc4, StateIsAPermutation)
{
    Rc4 rc4;
    auto key = fromHex("000102030405060708090a0b0c0d0e0f");
    rc4.setKey(key);
    std::array<bool, 256> seen{};
    for (uint8_t v : rc4.state()) {
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Rc4, RejectsBadKeySizes)
{
    Rc4 rc4;
    EXPECT_THROW(rc4.setKey(std::vector<uint8_t>{}), std::invalid_argument);
    EXPECT_THROW(rc4.setKey(std::vector<uint8_t>(257, 1)),
                 std::invalid_argument);
}

} // namespace
