/** @file CBC mode tests across all block ciphers. */

#include <gtest/gtest.h>

#include "crypto/cbc.hh"
#include "crypto/cipher.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::Xorshift64;

std::vector<CipherId>
blockCipherIds()
{
    std::vector<CipherId> ids;
    for (const auto &info : cipherCatalog()) {
        if (!info.isStream)
            ids.push_back(info.id);
    }
    return ids;
}

class CbcAllCiphers : public ::testing::TestWithParam<CipherId>
{};

TEST_P(CbcAllCiphers, RoundtripMultiBlock)
{
    auto cipher = makeBlockCipher(GetParam());
    const auto &info = cipher->info();
    Xorshift64 rng(101);
    cipher->setKey(rng.bytes(info.keyBits / 8));
    auto iv = rng.bytes(info.blockBytes);
    auto pt = rng.bytes(info.blockBytes * 37);

    CbcEncryptor enc(*cipher, iv);
    CbcDecryptor dec(*cipher, iv);
    auto ct = enc.encrypt(pt);
    EXPECT_NE(ct, pt);
    EXPECT_EQ(dec.decrypt(ct), pt);
}

TEST_P(CbcAllCiphers, ChainingPropagatesForward)
{
    // Flipping a bit in plaintext block 0 must change every later
    // ciphertext block.
    auto cipher = makeBlockCipher(GetParam());
    const auto &info = cipher->info();
    Xorshift64 rng(102);
    cipher->setKey(rng.bytes(info.keyBits / 8));
    auto iv = rng.bytes(info.blockBytes);
    auto pt = rng.bytes(info.blockBytes * 8);

    CbcEncryptor enc_a(*cipher, iv);
    auto ct_a = enc_a.encrypt(pt);
    pt[0] ^= 1;
    CbcEncryptor enc_b(*cipher, iv);
    auto ct_b = enc_b.encrypt(pt);

    for (size_t block = 0; block < 8; block++) {
        bool differs = false;
        for (size_t i = 0; i < info.blockBytes; i++) {
            if (ct_a[block * info.blockBytes + i]
                != ct_b[block * info.blockBytes + i]) {
                differs = true;
                break;
            }
        }
        EXPECT_TRUE(differs) << "block " << block;
    }
}

TEST_P(CbcAllCiphers, StatefulAcrossCalls)
{
    // Encrypting in two chunks must match one shot (the IV carries).
    auto cipher = makeBlockCipher(GetParam());
    const auto &info = cipher->info();
    Xorshift64 rng(103);
    cipher->setKey(rng.bytes(info.keyBits / 8));
    auto iv = rng.bytes(info.blockBytes);
    auto pt = rng.bytes(info.blockBytes * 10);

    CbcEncryptor whole(*cipher, iv);
    auto one_shot = whole.encrypt(pt);

    CbcEncryptor chunked(*cipher, iv);
    size_t split = info.blockBytes * 4;
    auto first = chunked.encrypt(
        std::span<const uint8_t>(pt.data(), split));
    auto second = chunked.encrypt(
        std::span<const uint8_t>(pt.data() + split, pt.size() - split));
    first.insert(first.end(), second.begin(), second.end());
    EXPECT_EQ(first, one_shot);
}

TEST_P(CbcAllCiphers, IdenticalBlocksEncryptDifferently)
{
    // The defining CBC property vs ECB.
    auto cipher = makeBlockCipher(GetParam());
    const auto &info = cipher->info();
    Xorshift64 rng(104);
    cipher->setKey(rng.bytes(info.keyBits / 8));
    auto iv = rng.bytes(info.blockBytes);
    std::vector<uint8_t> pt(info.blockBytes * 2, 0x42);

    CbcEncryptor enc(*cipher, iv);
    auto ct = enc.encrypt(pt);
    EXPECT_NE(std::vector<uint8_t>(ct.begin(),
                                   ct.begin() + info.blockBytes),
              std::vector<uint8_t>(ct.begin() + info.blockBytes,
                                   ct.end()));
}

INSTANTIATE_TEST_SUITE_P(
    AllBlockCiphers, CbcAllCiphers,
    ::testing::ValuesIn(blockCipherIds()),
    [](const ::testing::TestParamInfo<CipherId> &info) {
        return cipherInfo(info.param).name;
    });

TEST(Cbc, RejectsBadIvSize)
{
    auto cipher = makeBlockCipher(CipherId::Blowfish);
    Xorshift64 rng(105);
    cipher->setKey(rng.bytes(16));
    auto iv = rng.bytes(4); // too small
    EXPECT_THROW(CbcEncryptor(*cipher, iv), std::invalid_argument);
}

TEST(Cbc, RejectsPartialBlocks)
{
    auto cipher = makeBlockCipher(CipherId::Blowfish);
    Xorshift64 rng(106);
    cipher->setKey(rng.bytes(16));
    auto iv = rng.bytes(8);
    CbcEncryptor enc(*cipher, iv);
    auto pt = rng.bytes(12); // not a multiple of 8
    EXPECT_THROW(enc.encrypt(pt), std::invalid_argument);
}

} // namespace
