/** @file Known-answer and property tests for IDEA. */

#include <gtest/gtest.h>

#include "crypto/idea.hh"
#include "util/hex.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::crypto;
using cryptarch::util::fromHex;
using cryptarch::util::toHex;
using cryptarch::util::Xorshift64;

// The standard IDEA reference vector (Lai's thesis / ETH test suite).
TEST(Idea, KnownAnswer)
{
    Idea idea;
    idea.setKey(fromHex("00010002000300040005000600070008"));
    auto pt = fromHex("0000000100020003");
    uint8_t ct[8];
    idea.encryptBlock(pt.data(), ct);
    EXPECT_EQ(toHex(ct, 8), "11fbed2b01986de5");
    uint8_t back[8];
    idea.decryptBlock(ct, back);
    EXPECT_EQ(toHex(back, 8), "0000000100020003");
}

TEST(Idea, Roundtrip)
{
    Idea idea;
    idea.setKey(fromHex("2bd6459f82c5b300952c49104881ff48"));
    Xorshift64 rng(21);
    for (int i = 0; i < 100; i++) {
        auto pt = rng.bytes(8);
        uint8_t ct[8], back[8];
        idea.encryptBlock(pt.data(), ct);
        idea.decryptBlock(ct, back);
        EXPECT_EQ(std::vector<uint8_t>(back, back + 8), pt);
    }
}

TEST(IdeaMulMod, ZeroConvention)
{
    // 0 encodes 2^16 = -1 (mod 2^16+1): (-1)*(-1) = 1.
    EXPECT_EQ(ideaMulMod(0, 0), 1);
    // (-1)*b = p - b
    EXPECT_EQ(ideaMulMod(0, 1), 0); // p - 1 = 2^16, encoded as 0
    EXPECT_EQ(ideaMulMod(0, 2), 0xFFFF);
    EXPECT_EQ(ideaMulMod(5, 0), ideaMulMod(0, 5));
}

TEST(IdeaMulMod, MatchesNaiveModularMultiply)
{
    Xorshift64 rng(22);
    auto naive = [](uint32_t a, uint32_t b) {
        uint64_t aa = a == 0 ? 0x10000 : a;
        uint64_t bb = b == 0 ? 0x10000 : b;
        uint64_t r = aa * bb % 0x10001;
        return static_cast<uint16_t>(r == 0x10000 ? 0 : r);
    };
    for (int i = 0; i < 5000; i++) {
        uint16_t a = static_cast<uint16_t>(rng.next());
        uint16_t b = static_cast<uint16_t>(rng.next());
        ASSERT_EQ(ideaMulMod(a, b), naive(a, b)) << a << " * " << b;
    }
}

TEST(IdeaMulInverse, InvertsEverything)
{
    // Every residue of the prime field (0 encoding 2^16) is invertible.
    for (uint32_t a = 0; a < 0x10000; a += 37) {
        uint16_t inv = ideaMulInverse(static_cast<uint16_t>(a));
        EXPECT_EQ(ideaMulMod(static_cast<uint16_t>(a), inv), 1) << a;
    }
    EXPECT_EQ(ideaMulInverse(1), 1);
    EXPECT_EQ(ideaMulInverse(0), 0); // 2^16 is self-inverse
}

TEST(Idea, SubkeyScheduleFirstBatch)
{
    // The first eight subkeys are the key words themselves.
    Idea idea;
    idea.setKey(fromHex("00010002000300040005000600070008"));
    const auto &ek = idea.encryptKeys();
    for (int i = 0; i < 8; i++)
        EXPECT_EQ(ek[i], i + 1) << "subkey " << i;
    // The ninth subkey starts the 25-bit-rotated schedule: bits 25..40
    // of the original key = (word1 << 9) | (word2 >> 7).
    EXPECT_EQ(ek[8], 0x0400);
}

TEST(Idea, RejectsBadKeySize)
{
    Idea idea;
    EXPECT_THROW(idea.setKey(fromHex("0001")), std::invalid_argument);
}

} // namespace
