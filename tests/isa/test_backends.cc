/**
 * @file
 * Differential parity tests between execution backends.
 *
 * The ExecBackend contract (isa/exec_backend.hh) says backend choice
 * is a performance decision, never a semantics decision: for the same
 * program and initial state every backend must produce field-for-field
 * identical DynInst streams, identical architectural side effects, and
 * identical traps. These tests enforce that contract between the
 * reference interpreter (isa::Machine) and the pre-decoded threaded
 * executor (isa::ThreadedMachine) over the entire kernel catalog —
 * every (cipher, variant, direction) — and over every trap cause.
 *
 * Two stream plumbing paths exist in the threaded backend: the packed
 * row fast path (sinks that expose a PackedTrace via packedSink) and
 * the generic DynInst emit path. Both are compared against the
 * interpreter, and the packed products are compared as serialized
 * bytes, proving the fast path's flag canonicalization reproduces
 * PackedTrace::append exactly — not just a decode-equal stream.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "driver/workload.hh"
#include "isa/exec_backend.hh"
#include "isa/machine.hh"
#include "isa/packed_trace.hh"
#include "isa/threaded_machine.hh"
#include "kernels/kernel.hh"
#include "verify/expand_check.hh"

namespace
{

using namespace cryptarch;
using namespace cryptarch::isa;
using kernels::KernelDirection;
using kernels::KernelVariant;

constexpr Reg r1{1}, r2{2}, r3{3};

/** Session small enough for -O0 CI yet multi-block for every cipher. */
constexpr size_t parity_bytes = 256;

/**
 * Reference-stream sink: packed append with results kept, reachable
 * through both plumbing paths (emit for the interpreter, the packed
 * fast path for the threaded backend). Mirrors the driver's gate sink.
 */
struct PackedKeepSink : TraceSink
{
    PackedTrace trace;

    void emit(const DynInst &d) override { trace.append(d, true); }

    PackedTrace *
    packedSink(bool &keepResults) override
    {
        keepResults = true;
        return &trace;
    }
};

/** Plain capture sink with no packed fast path (forces emit()). */
struct VectorSink : TraceSink
{
    std::vector<DynInst> trace;
    void emit(const DynInst &d) override { trace.push_back(d); }
};

struct BackendCase
{
    crypto::CipherId cipher;
    KernelVariant variant;
    KernelDirection direction;
};

std::string
caseName(const ::testing::TestParamInfo<BackendCase> &info)
{
    const auto &c = info.param;
    std::string name = "K_"; // gtest names may not start with a digit
    name += crypto::cipherInfo(c.cipher).name;
    name += '_';
    name += kernels::variantName(c.variant);
    name += c.direction == KernelDirection::Encrypt ? "_enc" : "_dec";
    for (auto &ch : name)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    return name;
}

std::vector<BackendCase>
allCases()
{
    std::vector<BackendCase> cases;
    for (const auto &info : crypto::cipherCatalog()) {
        for (auto v : {KernelVariant::BaselineNoRot,
                       KernelVariant::BaselineRot,
                       KernelVariant::Optimized,
                       KernelVariant::OptimizedGrp,
                       KernelVariant::OptimizedFused}) {
            cases.push_back({info.id, v, KernelDirection::Encrypt});
            cases.push_back({info.id, v, KernelDirection::Decrypt});
        }
    }
    return cases;
}

kernels::KernelBuild
buildCase(const BackendCase &c, std::vector<uint8_t> &image)
{
    auto w = driver::makeWorkload(c.cipher, parity_bytes);
    std::vector<uint8_t> input = w.plaintext;
    if (c.direction == KernelDirection::Decrypt) {
        // Any deterministic input works for stream parity; reuse the
        // plaintext bytes as "ciphertext" rather than dragging the
        // reference cipher in (the oracle tests own round-trips).
        input = w.plaintext;
    }
    auto build = kernels::buildKernel(c.cipher, c.variant, w.key, w.iv,
                                      parity_bytes, c.direction);
    image = kernels::toWordImage(c.cipher, input);
    return build;
}

class BackendParity : public ::testing::TestWithParam<BackendCase>
{};

/**
 * The tentpole guarantee: interpreter and threaded backend produce
 * identical streams (results included), identical run stats, identical
 * outputs — and the packed encodings are byte-identical, so the
 * threaded fast path canonicalizes flags exactly like append().
 */
TEST_P(BackendParity, StreamsFieldForFieldIdentical)
{
    std::vector<uint8_t> image;
    auto build = buildCase(GetParam(), image);

    Machine interp;
    build.install(interp, image);
    PackedKeepSink ref;
    RunStats si = interp.run(build.program, &ref);

    ThreadedMachine threaded;
    build.install(threaded, image);
    PackedKeepSink cand;
    RunStats st = threaded.run(build.program, &cand);

    EXPECT_EQ(si.instructions, st.instructions);
    ASSERT_EQ(ref.trace.size(), cand.trace.size());

    auto ra = ref.trace.reader();
    auto rb = cand.trace.reader();
    uint64_t checked = 0;
    while (!ra.done()) {
        const DynInst a = ra.next();
        const DynInst b = rb.next();
        const auto field = verify::firstDynInstDifference(a, b);
        ASSERT_TRUE(field.empty())
            << "streams diverge at seq " << checked << " field "
            << field;
        checked++;
    }

    // Encoding identity, not just decode identity.
    EXPECT_EQ(ref.trace.serialize(), cand.trace.serialize());

    // Architectural side effects: the output image both backends leave
    // in data memory.
    EXPECT_EQ(build.readOutput(interp), build.readOutput(threaded));
}

/**
 * The threaded backend's generic emit() path (sinks without a packed
 * fast path) must match the interpreter too — the adoption gate's
 * forwarding comparator runs through it.
 */
TEST_P(BackendParity, VirtualEmitPathMatches)
{
    std::vector<uint8_t> image;
    auto build = buildCase(GetParam(), image);

    Machine interp;
    build.install(interp, image);
    VectorSink a;
    interp.run(build.program, &a);

    ThreadedMachine threaded;
    build.install(threaded, image);
    VectorSink b;
    threaded.run(build.program, &b);

    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); i++) {
        const auto field =
            verify::firstDynInstDifference(a.trace[i], b.trace[i]);
        ASSERT_TRUE(field.empty())
            << "emit streams diverge at seq " << i << " field " << field;
    }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, BackendParity,
                         ::testing::ValuesIn(allCases()), caseName);

// --- trap parity ------------------------------------------------------

/**
 * Run @p p on both backends with identical @p fuel, require both to
 * trap, and require cause/pc/seq/what() to match. Returns the
 * interpreter's trap for cause-specific assertions. Also requires the
 * partial streams retired before the trap to be identical (the
 * staging buffer must land the retired prefix even when unwinding).
 */
Trap
expectTrapParity(const Program &p, uint64_t fuel = 1ull << 20)
{
    PackedKeepSink sa, sb;
    Machine interp;
    ThreadedMachine threaded;

    auto runOne = [&](ExecBackend &m, TraceSink *sink)
        -> std::optional<Trap> {
        try {
            m.run(p, sink, fuel);
        } catch (const Trap &t) {
            return t;
        }
        return std::nullopt;
    };

    auto ta = runOne(interp, &sa);
    auto tb = runOne(threaded, &sb);
    if (!ta || !tb) {
        ADD_FAILURE() << "expected both backends to trap (interp="
                      << ta.has_value()
                      << " threaded=" << tb.has_value() << ")";
        return Trap(TrapCause::PcOverrun, "unreachable");
    }

    EXPECT_EQ(ta->cause(), tb->cause());
    EXPECT_EQ(ta->pc(), tb->pc());
    EXPECT_EQ(ta->seq(), tb->seq());
    EXPECT_EQ(ta->addr(), tb->addr());
    EXPECT_EQ(ta->accessSize(), tb->accessSize());
    EXPECT_EQ(ta->tableId(), tb->tableId());
    EXPECT_STREQ(ta->what(), tb->what());

    // Retired prefix parity: everything before the trapping inst.
    EXPECT_EQ(sa.trace.serialize(), sb.trace.serialize());
    return *ta;
}

TEST(BackendTrapParity, OobLoad)
{
    Assembler a;
    a.li(0x10'0000'0000, r1); // wide (> 2^32) and out of bounds
    a.ldq(r2, r1, 8);
    a.halt();
    Trap t = expectTrapParity(a.finalize());
    EXPECT_EQ(t.cause(), TrapCause::OobLoad);
    EXPECT_EQ(*t.seq(), 1u);
}

TEST(BackendTrapParity, OobStore)
{
    Assembler a;
    a.li(0xFFFFFF, r1);
    a.stq(r2, r1, 0);
    a.halt();
    Trap t = expectTrapParity(a.finalize());
    EXPECT_EQ(t.cause(), TrapCause::OobStore);
}

TEST(BackendTrapParity, MisalignedAccess)
{
    Assembler a;
    a.li(13, r1);
    a.ldl(r2, r1, 0);
    a.halt();
    Trap t = expectTrapParity(a.finalize());
    EXPECT_EQ(t.cause(), TrapCause::Misaligned);
}

TEST(BackendTrapParity, InvalidSboxTable)
{
    // The assembler rejects bad designators at emit time, so forge one
    // post-assembly; both backends must catch it at execution.
    Assembler a;
    a.li(0, r1);
    a.li(0, r2);
    a.sbox(0, 0, r1, r2, r3);
    a.halt();
    Program p = a.finalize();
    p.insts[2].tableId = max_sbox_tables;
    Trap t = expectTrapParity(p);
    EXPECT_EQ(t.cause(), TrapCause::InvalidSboxTable);
    EXPECT_EQ(*t.tableId(), max_sbox_tables);
}

TEST(BackendTrapParity, FuelExhausted)
{
    Assembler a;
    a.label("spin");
    a.addq(r1, 1, r1);
    a.br("spin");
    a.halt();
    // Fuel chosen to exhaust mid-loop, past several staging batches.
    Trap t = expectTrapParity(a.finalize(), 1000);
    EXPECT_EQ(t.cause(), TrapCause::FuelExhausted);
}

TEST(BackendTrapParity, PcOverrun)
{
    Assembler a;
    a.li(5, r1);
    a.addq(r1, 1, r2); // falls off the end: no halt
    Trap t = expectTrapParity(a.finalize());
    EXPECT_EQ(t.cause(), TrapCause::PcOverrun);
}

// --- targeted stream shapes -------------------------------------------

/**
 * rc == R63 ALU results are discarded by the interpreter; the threaded
 * backend routes such instructions to its emit-only handler. The
 * streams (dest, result, everything) must still match.
 */
TEST(BackendStreamShapes, DiscardedDestinationParity)
{
    Assembler a;
    a.li(7, r1);
    a.li(9, r2);
    a.addq(r1, r2, reg_zero);  // result discarded
    a.xor_(r1, r2, reg_zero);  // result discarded
    a.mulq(r1, r2, r3);        // result kept
    a.halt();
    Program p = a.finalize();

    Machine interp;
    ThreadedMachine threaded;
    PackedKeepSink sa, sb;
    interp.run(p, &sa);
    threaded.run(p, &sb);
    EXPECT_EQ(sa.trace.serialize(), sb.trace.serialize());

    auto r = sb.trace.reader();
    r.next(); r.next();
    const DynInst discarded = r.next();
    EXPECT_EQ(discarded.dest, reg_zero.n);
    EXPECT_EQ(discarded.result, 0u);
}

/**
 * A sink with a packed fast path but a non-empty trace must fall back
 * to emit(): appendRow's implicit sequence numbers only line up when
 * the run starts from a fresh trace.
 */
TEST(BackendStreamShapes, NonEmptyPackedSinkFallsBackToEmit)
{
    Assembler a;
    a.li(1, r1);
    a.halt();
    Program p = a.finalize();

    PackedKeepSink sink;
    DynInst pre;
    pre.seq = 0;
    sink.trace.append(pre, true); // pre-existing row
    ThreadedMachine threaded;
    threaded.run(p, &sink);
    // li + halt appended after the pre-existing row, via emit().
    EXPECT_EQ(sink.trace.size(), 3u);
}

} // namespace
