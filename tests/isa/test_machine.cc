/** @file Functional tests for the CryptISA interpreter. */

#include <gtest/gtest.h>

#include "crypto/idea.hh"
#include "isa/machine.hh"
#include "util/bitops.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::isa;
using cryptarch::util::rotl32;
using cryptarch::util::Xorshift64;

constexpr Reg r0{0}, r1{1}, r2{2}, r3{3}, r4{4}, r5{5};

/** Run a single-result program and return the value left in r0. */
uint64_t
runProgram(Assembler &a, Machine &m)
{
    a.halt();
    Program p = a.finalize();
    m.run(p);
    return m.reg(r0);
}

TEST(Machine, AluBasics)
{
    Machine m;
    m.setReg(r1, 10);
    m.setReg(r2, 3);
    Assembler a;
    a.addq(r1, r2, r0);
    EXPECT_EQ(runProgram(a, m), 13u);

    Assembler s;
    s.subq(r1, r2, r0);
    EXPECT_EQ(runProgram(s, m), 7u);

    Assembler x;
    x.xor_(r1, r2, r0);
    EXPECT_EQ(runProgram(x, m), 9u);
}

TEST(Machine, ZeroRegisterIsImmutable)
{
    Machine m;
    Assembler a;
    a.li(42, reg_zero);
    a.addq(reg_zero, 1, r0);
    EXPECT_EQ(runProgram(a, m), 1u);
}

TEST(Machine, Addl32BitWrap)
{
    Machine m;
    m.setReg(r1, 0xFFFFFFFFull);
    m.setReg(r2, 2);
    Assembler a;
    a.addl(r1, r2, r0);
    EXPECT_EQ(runProgram(a, m), 1u);
}

TEST(Machine, Shift32ZeroExtends)
{
    Machine m;
    m.setReg(r1, 0x80000001ull);
    Assembler a;
    a.sll32(r1, 1, r0);
    EXPECT_EQ(runProgram(a, m), 2u); // top bit shifted out, not into bit 32

    Machine m2;
    m2.setReg(r1, 0x80000000ull);
    Assembler b;
    b.srl32(r1, 31, r0);
    EXPECT_EQ(runProgram(b, m2), 1u);
}

TEST(Machine, ExtblExtractsBytes)
{
    Machine m;
    m.setReg(r1, 0x0807060504030201ull);
    for (int i = 0; i < 8; i++) {
        Assembler a;
        a.extbl(r1, i, r0);
        Machine mi = m;
        EXPECT_EQ(runProgram(a, mi), static_cast<uint64_t>(i + 1));
    }
}

TEST(Machine, ScaledAdds)
{
    Machine m;
    m.setReg(r1, 5);
    m.setReg(r2, 100);
    Assembler a;
    a.s4add(r1, r2, r0);
    EXPECT_EQ(runProgram(a, m), 120u);
    Assembler b;
    b.s8add(r1, r2, r0);
    EXPECT_EQ(runProgram(b, m), 140u);
}

TEST(Machine, LoadsAndStores)
{
    Machine m;
    m.setReg(r1, 0x1000);
    m.setReg(r2, 0x1122334455667788ull);
    Assembler a;
    a.stq(r2, r1, 0);
    a.ldl(r3, r1, 0);
    a.ldwu(r4, r1, 2);
    a.ldbu(r5, r1, 7);
    a.mov(r3, r0);
    a.halt();
    Program p = a.finalize();
    m.run(p);
    // Memory is little-endian.
    EXPECT_EQ(m.reg(r3), 0x55667788u);
    EXPECT_EQ(m.reg(r4), 0x5566u);
    EXPECT_EQ(m.reg(r5), 0x11u);
}

TEST(Machine, ThrowsOnOutOfBoundsAccess)
{
    Machine m(4096);
    m.setReg(r1, 4096);
    Assembler a;
    a.ldq(r0, r1, 0);
    a.halt();
    Program p = a.finalize();
    EXPECT_THROW(m.run(p), std::runtime_error);
}

TEST(Machine, BranchLoop)
{
    // Sum 1..10 with a countdown loop.
    Machine m;
    Assembler a;
    a.li(10, r1);
    a.li(0, r2);
    a.label("loop");
    a.addq(r2, r1, r2);
    a.subq(r1, 1, r1);
    a.bne(r1, "loop");
    a.mov(r2, r0);
    EXPECT_EQ(runProgram(a, m), 55u);
}

TEST(Machine, ConditionalMoves)
{
    Machine m;
    m.setReg(r1, 0);
    m.setReg(r2, 7);
    m.setReg(r3, 9);
    Assembler a;
    a.mov(r3, r0);
    a.cmoveq(r1, r2, r0); // r1 == 0 -> r0 = 7
    a.halt();
    m.run(a.finalize());
    EXPECT_EQ(m.reg(r0), 7u);

    Machine m2;
    m2.setReg(r1, 1);
    m2.setReg(r2, 7);
    m2.setReg(r3, 9);
    Assembler b;
    b.mov(r3, r0);
    b.cmoveq(r1, r2, r0); // r1 != 0 -> unchanged
    b.halt();
    m2.run(b.finalize());
    EXPECT_EQ(m2.reg(r0), 9u);
}

TEST(Machine, RotatesMatchReference)
{
    Xorshift64 rng(123);
    for (int i = 0; i < 50; i++) {
        uint32_t v = rng.next32();
        unsigned n = rng.next() % 32;
        Machine m;
        m.setReg(r1, v);
        m.setReg(r2, n);
        Assembler a;
        a.rol32(r1, r2, r0);
        a.halt();
        m.run(a.finalize());
        EXPECT_EQ(m.reg(r0), rotl32(v, n));

        Machine m2;
        m2.setReg(r1, v);
        Assembler b;
        b.ror32(r1, static_cast<int64_t>(n), r0);
        b.halt();
        m2.run(b.finalize());
        EXPECT_EQ(m2.reg(r0), rotl32(v, 32 - n) & 0xFFFFFFFFu);
    }
}

TEST(Machine, RolxXorAccumulates)
{
    Machine m;
    m.setReg(r1, 0x00000001);
    m.setReg(r0, 0xF0F0F0F0);
    Assembler a;
    a.rolx32(r1, 4, r0);
    a.halt();
    m.run(a.finalize());
    EXPECT_EQ(m.reg(r0), (0x10u ^ 0xF0F0F0F0u));
}

TEST(Machine, MulmodMatchesIdeaSemantics)
{
    Xorshift64 rng(321);
    for (int i = 0; i < 200; i++) {
        uint16_t x = static_cast<uint16_t>(rng.next());
        uint16_t y = static_cast<uint16_t>(rng.next());
        Machine m;
        m.setReg(r1, x);
        m.setReg(r2, y);
        Assembler a;
        a.mulmod(r1, r2, r0);
        a.halt();
        m.run(a.finalize());
        EXPECT_EQ(m.reg(r0), cryptarch::crypto::ideaMulMod(x, y));
    }
}

TEST(Machine, SboxIndexesTable)
{
    Machine m;
    // Table at a 1 KB boundary; entry i = i * 0x01010101.
    const uint64_t table = 0x2000;
    for (uint32_t i = 0; i < 256; i++)
        m.write32(table + 4 * i, i * 0x01010101u);
    m.setReg(r1, table);
    m.setReg(r2, 0xDDCCBBAAull); // byte 0 = AA, byte 1 = BB, ...
    for (unsigned bs = 0; bs < 4; bs++) {
        Assembler a;
        a.sbox(0, bs, r1, r2, r0);
        a.halt();
        Machine mi = m;
        mi.run(a.finalize());
        uint32_t idx = (0xDDCCBBAAull >> (8 * bs)) & 0xFF;
        EXPECT_EQ(mi.reg(r0), idx * 0x01010101u) << "byte " << bs;
    }
}

TEST(Machine, SboxIgnoresLowTableBits)
{
    Machine m;
    const uint64_t table = 0x2000;
    m.write32(table + 4 * 7, 0xCAFEBABEu);
    m.setReg(r1, table + 0x3F0); // low bits must be masked off
    m.setReg(r2, 7);
    Assembler a;
    a.sbox(0, 0, r1, r2, r0);
    a.halt();
    m.run(a.finalize());
    EXPECT_EQ(m.reg(r0), 0xCAFEBABEu);
}

TEST(Machine, SboxSyncVisibilitySemantics)
{
    // Paper Figure 8: stores are not visible to later SBOX instructions
    // until an SBOXSYNC executes (unless the aliased flag is set).
    Machine m;
    const uint64_t table = 0x2000;
    m.write32(table, 111);
    m.setReg(r1, table);
    m.setReg(r2, 0);     // index 0
    m.setReg(r3, 222);

    Assembler a;
    a.sbox(0, 0, r1, r2, r4);        // snapshot taken: reads 111
    a.stl(r3, r1, 0);                // store 222 into the table
    a.sbox(0, 0, r1, r2, r5);        // still 111 (no sync)
    a.sboxsync();
    a.sbox(0, 0, r1, r2, r0);        // now 222
    a.halt();
    m.run(a.finalize());
    EXPECT_EQ(m.reg(r4), 111u);
    EXPECT_EQ(m.reg(r5), 111u);
    EXPECT_EQ(m.reg(r0), 222u);
}

TEST(Machine, AliasedSboxSeesStoresImmediately)
{
    Machine m;
    const uint64_t table = 0x2000;
    m.write32(table, 111);
    m.setReg(r1, table);
    m.setReg(r2, 0);
    m.setReg(r3, 222);

    Assembler a;
    a.sbox(0, 0, r1, r2, r4, /*aliased=*/true);
    a.stl(r3, r1, 0);
    a.sbox(0, 0, r1, r2, r0, /*aliased=*/true);
    a.halt();
    m.run(a.finalize());
    EXPECT_EQ(m.reg(r4), 111u);
    EXPECT_EQ(m.reg(r0), 222u);
}

TEST(Machine, XboxPermutesSelectedBits)
{
    Machine m;
    m.setReg(r1, 0x8000000000000001ull); // bits 63 and 0 set
    // Map: output bit j takes input bit map[j]. Select bits 63, 0,
    // 63, 0, ... alternating.
    uint64_t map = 0;
    for (unsigned j = 0; j < 8; j++) {
        unsigned src = (j % 2 == 0) ? 63 : 0;
        map |= static_cast<uint64_t>(src) << (6 * j);
    }
    m.setReg(r2, map);
    Assembler a;
    a.xbox(2, r1, r2, r0); // write result byte 2
    a.halt();
    m.run(a.finalize());
    // All eight selected bits are 1 -> byte 2 = 0xFF, everything else 0.
    EXPECT_EQ(m.reg(r0), 0xFFull << 16);
}

TEST(Machine, XboxMatchesNaivePermutation)
{
    Xorshift64 rng(999);
    for (int trial = 0; trial < 20; trial++) {
        uint64_t value = rng.next();
        // Random full 64-bit permutation map: 8 XBOXes OR'ed together.
        std::array<unsigned, 64> perm;
        for (unsigned i = 0; i < 64; i++)
            perm[i] = i;
        for (unsigned i = 63; i > 0; i--)
            std::swap(perm[i], perm[rng.next() % (i + 1)]);

        uint64_t expect = 0;
        for (unsigned i = 0; i < 64; i++)
            expect |= ((value >> perm[i]) & 1) << i;

        Machine m;
        m.setReg(r1, value);
        Assembler a;
        Reg acc{10};
        a.li(0, acc);
        for (unsigned byte = 0; byte < 8; byte++) {
            uint64_t map = 0;
            for (unsigned j = 0; j < 8; j++) {
                map |= static_cast<uint64_t>(perm[8 * byte + j])
                    << (6 * j);
            }
            Reg mr{static_cast<uint8_t>(20 + byte)};
            m.setReg(mr, map);
            Reg t{static_cast<uint8_t>(30 + byte)};
            a.xbox(byte, r1, mr, t);
            a.bis(acc, t, acc);
        }
        a.mov(acc, r0);
        a.halt();
        m.run(a.finalize());
        EXPECT_EQ(m.reg(r0), expect);
    }
}

TEST(Machine, InstructionLimitGuards)
{
    Machine m;
    Assembler a;
    a.label("spin");
    a.br("spin");
    Program p = a.finalize();
    EXPECT_THROW(m.run(p, nullptr, 1000), std::runtime_error);
}

} // namespace
