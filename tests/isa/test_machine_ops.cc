/** @file Exhaustive per-opcode semantics tests for the interpreter. */

#include <gtest/gtest.h>

#include "isa/machine.hh"
#include "util/bitops.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::isa;
using cryptarch::util::rotl64;
using cryptarch::util::rotr32;
using cryptarch::util::rotr64;
using cryptarch::util::Xorshift64;

constexpr Reg r0{0}, r1{1}, r2{2};

/** Execute one ALU-style op with register operands. */
uint64_t
exec2(void (Assembler::*op)(Reg, Reg, Reg), uint64_t a, uint64_t b)
{
    Machine m;
    m.setReg(r1, a);
    m.setReg(r2, b);
    Assembler as;
    (as.*op)(r1, r2, r0);
    as.halt();
    m.run(as.finalize());
    return m.reg(r0);
}

TEST(MachineOps, LogicalOps)
{
    EXPECT_EQ(exec2(&Assembler::and_, 0xF0F0, 0xFF00), 0xF000u);
    EXPECT_EQ(exec2(&Assembler::bis, 0xF0F0, 0x0F0F), 0xFFFFu);
    EXPECT_EQ(exec2(&Assembler::xor_, 0xF0F0, 0xFFFF), 0x0F0Fu);
    EXPECT_EQ(exec2(&Assembler::bic, 0xFFFF, 0x00FF), 0xFF00u);
    EXPECT_EQ(exec2(&Assembler::ornot, 0x1, 0xFFFFFFFFFFFFFFF0ull),
              0xFull | 0x1);
}

TEST(MachineOps, Shifts64)
{
    EXPECT_EQ(exec2(&Assembler::sll, 1, 63), 1ull << 63);
    EXPECT_EQ(exec2(&Assembler::srl, 1ull << 63, 63), 1u);
    // Shift counts use the low 6 bits.
    EXPECT_EQ(exec2(&Assembler::sll, 1, 64), 1u);
}

TEST(MachineOps, ArithmeticShiftRight)
{
    Machine m;
    m.setReg(r1, 0xFFFFFFFFFFFFFF00ull); // -256
    Assembler as;
    as.sra(r1, 4, r0);
    as.halt();
    m.run(as.finalize());
    EXPECT_EQ(static_cast<int64_t>(m.reg(r0)), -16);
}

TEST(MachineOps, Compares)
{
    EXPECT_EQ(exec2(&Assembler::cmpeq, 5, 5), 1u);
    EXPECT_EQ(exec2(&Assembler::cmpeq, 5, 6), 0u);
    EXPECT_EQ(exec2(&Assembler::cmpult, 5, 6), 1u);
    EXPECT_EQ(exec2(&Assembler::cmpult, 6, 5), 0u);
    // Unsigned vs signed: -1 is large unsigned.
    EXPECT_EQ(exec2(&Assembler::cmpult, ~0ull, 1), 0u);
    EXPECT_EQ(exec2(&Assembler::cmplt, ~0ull, 1), 1u);
}

TEST(MachineOps, Multiplies)
{
    EXPECT_EQ(exec2(&Assembler::mulq, 0xFFFFFFFFull, 0xFFFFFFFFull),
              0xFFFFFFFE00000001ull);
    // MULL keeps the low 32 bits, zero-extended.
    EXPECT_EQ(exec2(&Assembler::mull, 0xFFFFFFFFull, 0xFFFFFFFFull),
              0x00000001u);
}

TEST(MachineOps, Rotates64)
{
    Xorshift64 rng(5);
    for (int i = 0; i < 30; i++) {
        uint64_t v = rng.next();
        uint64_t n = rng.next() % 64;
        EXPECT_EQ(exec2(&Assembler::rol, v, n), rotl64(v, n));
        EXPECT_EQ(exec2(&Assembler::ror, v, n), rotr64(v, n));
    }
}

TEST(MachineOps, RorxAccumulates)
{
    Machine m;
    m.setReg(r1, 0x2);
    m.setReg(r0, 0xFF);
    Assembler as;
    as.rorx32(r1, 1, r0);
    as.halt();
    m.run(as.finalize());
    EXPECT_EQ(m.reg(r0), (rotr32(0x2, 1) ^ 0xFF));
}

TEST(MachineOps, SignedBranches)
{
    // blt taken for negative, bge for non-negative.
    for (int64_t v : {-5ll, 0ll, 5ll}) {
        Machine m;
        m.setReg(r1, static_cast<uint64_t>(v));
        Assembler as;
        as.li(0, r0);
        as.blt(r1, "neg");
        as.li(1, r0); // non-negative path
        as.br("end");
        as.label("neg");
        as.li(2, r0);
        as.label("end");
        as.halt();
        m.run(as.finalize());
        EXPECT_EQ(m.reg(r0), v < 0 ? 2u : 1u) << v;

        Machine m2;
        m2.setReg(r1, static_cast<uint64_t>(v));
        Assembler bs;
        bs.li(0, r0);
        bs.bge(r1, "pos");
        bs.li(1, r0);
        bs.br("end");
        bs.label("pos");
        bs.li(2, r0);
        bs.label("end");
        bs.halt();
        m2.run(bs.finalize());
        EXPECT_EQ(m2.reg(r0), v >= 0 ? 2u : 1u) << v;
    }
}

TEST(MachineOps, StoreSizes)
{
    Machine m;
    m.setReg(r1, 0x1000);
    m.setReg(r2, 0x1122334455667788ull);
    Assembler as;
    as.stq(r2, r1, 0);
    as.stl(r2, r1, 8);
    as.stw(r2, r1, 16);
    as.stb(r2, r1, 24);
    as.halt();
    m.run(as.finalize());
    EXPECT_EQ(m.readMem(0x1000, 8),
              (std::vector<uint8_t>{0x88, 0x77, 0x66, 0x55, 0x44, 0x33,
                                    0x22, 0x11}));
    EXPECT_EQ(m.readMem(0x1008, 4),
              (std::vector<uint8_t>{0x88, 0x77, 0x66, 0x55}));
    EXPECT_EQ(m.readMem(0x1010, 2), (std::vector<uint8_t>{0x88, 0x77}));
    EXPECT_EQ(m.readMem(0x1018, 1), (std::vector<uint8_t>{0x88}));
}

TEST(MachineOps, CmovneTakesWhenNonzero)
{
    Machine m;
    m.setReg(r1, 1);
    m.setReg(r2, 42);
    m.setReg(r0, 7);
    Assembler as;
    as.cmovne(r1, r2, r0);
    as.halt();
    m.run(as.finalize());
    EXPECT_EQ(m.reg(r0), 42u);
}

TEST(MachineOps, ImmediateFormsMatchRegisterForms)
{
    Xorshift64 rng(6);
    for (int i = 0; i < 20; i++) {
        uint64_t a = rng.next();
        int64_t imm = static_cast<int64_t>(rng.next() % 255);
        Machine m1, m2;
        m1.setReg(r1, a);
        m2.setReg(r1, a);
        m2.setReg(r2, static_cast<uint64_t>(imm));
        Assembler as1, as2;
        as1.addq(r1, imm, r0);
        as1.halt();
        as2.addq(r1, r2, r0);
        as2.halt();
        m1.run(as1.finalize());
        m2.run(as2.finalize());
        EXPECT_EQ(m1.reg(r0), m2.reg(r0));
    }
}

TEST(MachineOps, S8addScales)
{
    EXPECT_EQ(exec2(&Assembler::s8add, 5, 100), 140u);
}

} // namespace
