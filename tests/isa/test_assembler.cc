/** @file Unit tests for the CryptISA assembler. */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace
{

using namespace cryptarch::isa;

TEST(Assembler, ResolvesForwardAndBackwardLabels)
{
    Assembler a;
    Reg r0{0};
    a.label("top");        // index 0
    a.addq(r0, 1, r0);     // 0
    a.bne(r0, "exit");     // 1 -> 3
    a.br("top");           // 2 -> 0
    a.label("exit");
    a.halt();              // 3
    Program p = a.finalize();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[1].target, 3);
    EXPECT_EQ(p[2].target, 0);
}

TEST(Assembler, ThrowsOnUndefinedLabel)
{
    Assembler a;
    a.br("nowhere");
    EXPECT_THROW(a.finalize(), std::runtime_error);
}

TEST(Assembler, ThrowsOnDuplicateLabel)
{
    Assembler a;
    a.label("x");
    EXPECT_THROW(a.label("x"), std::runtime_error);
}

TEST(Assembler, ImmediateFormsSetFlag)
{
    Assembler a;
    Reg r1{1}, r2{2};
    a.addq(r1, r2, r1);
    a.addq(r1, 42, r1);
    Program p = a.finalize();
    EXPECT_FALSE(p[0].useImm);
    EXPECT_TRUE(p[1].useImm);
    EXPECT_EQ(p[1].imm, 42);
}

TEST(Assembler, SboxEncoding)
{
    Assembler a;
    Reg table{5}, index{6}, dest{7};
    a.sbox(2, 3, table, index, dest, true);
    Program p = a.finalize();
    EXPECT_EQ(p[0].op, Opcode::Sbox);
    EXPECT_EQ(p[0].tableId, 2);
    EXPECT_EQ(p[0].byteSel, 3);
    EXPECT_TRUE(p[0].aliased);
    EXPECT_EQ(opClass(p[0]), OpClass::Load); // aliased -> load
    p.insts[0].aliased = false;
    EXPECT_EQ(opClass(p[0]), OpClass::SboxRead);
}

TEST(Assembler, DisassemblyIsReadable)
{
    Assembler a;
    Reg r1{1}, r2{2}, r3{3};
    a.ldl(r1, r2, 16);
    a.rol32(r1, 5, r3);
    a.sbox(1, 2, r2, r1, r3);
    a.halt();
    Program p = a.finalize();
    std::string text = p.disassemble();
    EXPECT_NE(text.find("ldl r1, 16(r2)"), std::string::npos);
    EXPECT_NE(text.find("rol32 r1, #5, r3"), std::string::npos);
    EXPECT_NE(text.find("sbox.1.2 r2, r1, r3"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);
}

TEST(RegPool, AllocatesDistinctRegisters)
{
    RegPool pool;
    Reg a = pool.alloc();
    Reg b = pool.alloc();
    EXPECT_NE(a.n, b.n);
    EXPECT_NE(a.n, reg_zero.n);
}

TEST(RegPool, ThrowsWhenExhausted)
{
    RegPool pool;
    for (int i = 0; i < 63; i++)
        pool.alloc();
    EXPECT_THROW(pool.alloc(), std::runtime_error);
}

TEST(Inst, WritesDestClassification)
{
    Inst store;
    store.op = Opcode::Stq;
    store.rc = Reg{5};
    EXPECT_FALSE(store.writesDest());

    Inst add;
    add.op = Opcode::Addq;
    add.rc = Reg{5};
    EXPECT_TRUE(add.writesDest());
    add.rc = reg_zero;
    EXPECT_FALSE(add.writesDest());
}

} // namespace
