/**
 * @file
 * Structured-trap tests: every machine failure mode raises an
 * isa::Trap carrying its cause, pc/seq context, and (for memory
 * faults) the effective address — while remaining catchable as
 * std::runtime_error at legacy call sites. Assembler errors carry
 * source-label context the same way.
 */

#include <gtest/gtest.h>

#include <string>

#include "isa/machine.hh"
#include "isa/program.hh"
#include "isa/trap.hh"

namespace
{

using namespace cryptarch::isa;

constexpr Reg r1{1}, r2{2}, r3{3};

/** Run @p a to completion and return the trap it must raise. */
Trap
expectTrap(Assembler &a, Machine &m, uint64_t fuel = 1ull << 20)
{
    a.halt();
    Program p = a.finalize();
    try {
        m.run(p, nullptr, fuel);
    } catch (const Trap &t) {
        return t;
    }
    ADD_FAILURE() << "program completed without trapping";
    return Trap(TrapCause::PcOverrun, "unreachable");
}

TEST(Trap, OobLoadCarriesCauseAddressAndContext)
{
    Machine m(4096);
    Assembler a;
    a.li(0x10000, r1); // beyond the 4 KB memory
    a.ldq(r2, r1, 8);
    Trap t = expectTrap(a, m);

    EXPECT_EQ(t.cause(), TrapCause::OobLoad);
    ASSERT_TRUE(t.addr().has_value());
    EXPECT_EQ(*t.addr(), 0x10008u);
    ASSERT_TRUE(t.accessSize().has_value());
    EXPECT_EQ(*t.accessSize(), 8u);
    ASSERT_TRUE(t.pc().has_value());
    EXPECT_EQ(*t.pc(), 1u); // the ldq is instruction 1
    ASSERT_TRUE(t.seq().has_value());
    EXPECT_EQ(*t.seq(), 1u);

    // Register snapshot: r1 holds the bad base address.
    ASSERT_TRUE(t.regs().has_value());
    EXPECT_EQ((*t.regs())[r1.n], 0x10000u);

    // Legacy what(): names the cause, address, and pc.
    const std::string msg = t.what();
    EXPECT_NE(msg.find("oob-load"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0x10008"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pc=1"), std::string::npos) << msg;
}

TEST(Trap, OobStoreIsDistinguishedFromLoad)
{
    Machine m(4096);
    Assembler a;
    a.li(0xFFFFFF, r1);
    a.stq(r2, r1, 0);
    Trap t = expectTrap(a, m);
    EXPECT_EQ(t.cause(), TrapCause::OobStore);
    EXPECT_NE(std::string(t.what()).find("oob-store"),
              std::string::npos);
}

TEST(Trap, MisalignedAccessTraps)
{
    Machine m;
    Assembler a;
    a.li(0x1003, r1);
    a.ldl(r2, r1, 0); // 4-byte load at a 1-mod-4 address
    Trap t = expectTrap(a, m);
    EXPECT_EQ(t.cause(), TrapCause::Misaligned);
    ASSERT_TRUE(t.addr().has_value());
    EXPECT_EQ(*t.addr(), 0x1003u);
}

TEST(Trap, FuelExhaustionTraps)
{
    Machine m;
    Assembler a;
    a.label("spin");
    a.addq(r1, 1, r1);
    a.br("spin");
    Trap t = expectTrap(a, m, /*fuel=*/1000);
    EXPECT_EQ(t.cause(), TrapCause::FuelExhausted);
    EXPECT_NE(std::string(t.what()).find("fuel-exhausted"),
              std::string::npos);
}

TEST(Trap, InvalidSboxTableTrapsAtExecution)
{
    // The assembler rejects bad designators at emit time, so forge one
    // post-assembly: the machine must still catch it.
    Machine m;
    Assembler a;
    a.sbox(0, 0, r1, r2, r3);
    a.halt();
    Program p = a.finalize();
    p.insts[0].tableId = max_sbox_tables; // first invalid designator
    try {
        m.run(p);
        FAIL() << "invalid SBOX table id did not trap";
    } catch (const Trap &t) {
        EXPECT_EQ(t.cause(), TrapCause::InvalidSboxTable);
        ASSERT_TRUE(t.tableId().has_value());
        EXPECT_EQ(*t.tableId(), max_sbox_tables);
    }
}

TEST(Trap, PcOverrunTraps)
{
    // A program with no halt runs off its end.
    Machine m;
    Assembler a;
    a.addq(r1, 1, r1);
    Program p = a.finalize();
    try {
        m.run(p);
        FAIL() << "pc overrun did not trap";
    } catch (const Trap &t) {
        EXPECT_EQ(t.cause(), TrapCause::PcOverrun);
        EXPECT_NE(std::string(t.what()).find("pc-overrun"),
                  std::string::npos);
    }
}

TEST(Trap, LegacyRuntimeErrorCatchStillWorks)
{
    Machine m(4096);
    Assembler a;
    a.li(0x100000, r1);
    a.ldq(r2, r1, 0);
    a.halt();
    Program p = a.finalize();
    EXPECT_THROW(m.run(p), std::runtime_error);
}

TEST(Trap, BulkAccessorTrapsWithoutExecutionContext)
{
    Machine m(4096);
    try {
        m.writeMem(1 << 20, std::vector<uint8_t>{0});
        FAIL() << "out-of-bounds writeMem did not trap";
    } catch (const Trap &t) {
        EXPECT_EQ(t.cause(), TrapCause::OobStore);
        EXPECT_FALSE(t.pc().has_value());
        EXPECT_FALSE(t.regs().has_value());
    }
}

TEST(AsmError, UndefinedLabelNamesLabelAndInstruction)
{
    Assembler a;
    a.beq(r1, "nowhere");
    a.halt();
    try {
        a.finalize();
        FAIL() << "undefined label did not throw";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.label(), "nowhere");
        EXPECT_EQ(e.instIndex(), 0u);
        EXPECT_NE(std::string(e.what()).find("nowhere"),
                  std::string::npos);
    }
}

TEST(AsmError, DuplicateLabelNamesBothSites)
{
    Assembler a;
    a.label("twice");
    a.addq(r1, 1, r1);
    try {
        a.label("twice");
        FAIL() << "duplicate label did not throw";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.label(), "twice");
        EXPECT_NE(std::string(e.what()).find("twice"),
                  std::string::npos);
    }
}

TEST(AsmError, SboxTableIdValidatedAtEmit)
{
    Assembler a;
    EXPECT_THROW(a.sbox(max_sbox_tables, 0, r1, r2, r3), AsmError);
    EXPECT_THROW(a.sboxx(max_sbox_tables + 3, 0, r1, r2, r3), AsmError);
    // The last valid designator is accepted.
    a.sbox(max_sbox_tables - 1, 0, r1, r2, r3);
}

} // namespace
