/** @file Tests for dynamic trace emission. */

#include <gtest/gtest.h>

#include "isa/machine.hh"

namespace
{

using namespace cryptarch::isa;

constexpr Reg r1{1}, r2{2}, r3{3};

struct VectorSink : TraceSink
{
    std::vector<DynInst> trace;
    void emit(const DynInst &d) override { trace.push_back(d); }
};

TEST(Trace, EmitsEveryRetiredInstruction)
{
    Assembler a;
    a.li(3, r1);
    a.label("loop");
    a.subq(r1, 1, r1);
    a.bne(r1, "loop");
    a.halt();
    Program p = a.finalize();

    Machine m;
    VectorSink sink;
    auto stats = m.run(p, &sink);
    // li + 3x(sub, bne) + halt = 8
    EXPECT_EQ(stats.instructions, 8u);
    EXPECT_EQ(sink.trace.size(), 8u);
    for (size_t i = 0; i < sink.trace.size(); i++)
        EXPECT_EQ(sink.trace[i].seq, i);
}

TEST(Trace, RecordsBranchDirection)
{
    Assembler a;
    a.li(2, r1);
    a.label("loop");
    a.subq(r1, 1, r1);
    a.bne(r1, "loop");
    a.halt();
    Program p = a.finalize();

    Machine m;
    VectorSink sink;
    m.run(p, &sink);
    std::vector<bool> branch_taken;
    for (const auto &d : sink.trace) {
        if (d.branch)
            branch_taken.push_back(d.taken);
    }
    ASSERT_EQ(branch_taken.size(), 2u);
    EXPECT_TRUE(branch_taken[0]);  // r1 = 1 -> taken
    EXPECT_FALSE(branch_taken[1]); // r1 = 0 -> fall through
}

TEST(Trace, RecordsRegisterDependences)
{
    Assembler a;
    a.addq(r1, r2, r3);
    a.halt();
    Program p = a.finalize();
    Machine m;
    VectorSink sink;
    m.run(p, &sink);
    const auto &d = sink.trace[0];
    EXPECT_EQ(d.numSrcs, 2);
    EXPECT_EQ(d.srcs[0], 1);
    EXPECT_EQ(d.srcs[1], 2);
    EXPECT_EQ(d.dest, 3);
}

TEST(Trace, RecordsMemoryAddresses)
{
    Assembler a;
    a.li(0x1000, r1);
    a.stq(r2, r1, 8);
    a.ldl(r3, r1, 8);
    a.halt();
    Program p = a.finalize();
    Machine m;
    VectorSink sink;
    m.run(p, &sink);
    const auto &st = sink.trace[1];
    EXPECT_TRUE(st.isStore);
    EXPECT_EQ(st.addr, 0x1008u);
    EXPECT_EQ(st.size, 8);
    EXPECT_EQ(st.addrSrc, 1);
    const auto &ld = sink.trace[2];
    EXPECT_TRUE(ld.isLoad);
    EXPECT_EQ(ld.addr, 0x1008u);
    EXPECT_EQ(ld.size, 4);
}

TEST(Trace, RecordsResultValuesForValuePrediction)
{
    Assembler a;
    a.li(5, r1);
    a.addq(r1, 10, r2);
    a.halt();
    Program p = a.finalize();
    Machine m;
    VectorSink sink;
    m.run(p, &sink);
    EXPECT_EQ(sink.trace[0].result, 5u);
    EXPECT_EQ(sink.trace[1].result, 15u);
}

TEST(Trace, ZeroDestIsNotADependence)
{
    Assembler a;
    a.addq(r1, r2, reg_zero);
    a.halt();
    Program p = a.finalize();
    Machine m;
    VectorSink sink;
    m.run(p, &sink);
    EXPECT_EQ(sink.trace[0].dest, reg_zero.n);
}

TEST(Trace, SboxCarriesTableMetadata)
{
    Assembler a;
    a.li(0x2000, r1);
    a.sbox(3, 1, r1, r2, r3, true);
    a.halt();
    Program p = a.finalize();
    Machine m;
    VectorSink sink;
    m.run(p, &sink);
    const auto &d = sink.trace[1];
    EXPECT_EQ(d.tableId, 3);
    EXPECT_TRUE(d.aliased);
    EXPECT_TRUE(d.isLoad);
    EXPECT_EQ(d.cls, OpClass::Load);
}

} // namespace
