/** @file Tests for the GRP instruction (Shi & Lee related-work ext). */

#include <gtest/gtest.h>

#include "isa/machine.hh"
#include "util/xorshift.hh"

namespace
{

using namespace cryptarch::isa;
using cryptarch::util::Xorshift64;

constexpr Reg r0{0}, r1{1}, r2{2};

uint64_t
runGrp(uint64_t value, uint64_t control)
{
    Machine m;
    m.setReg(r1, value);
    m.setReg(r2, control);
    Assembler a;
    a.grp(r1, r2, r0);
    a.halt();
    m.run(a.finalize());
    return m.reg(r0);
}

/** Reference semantics: control-0 bits pack low, control-1 bits high. */
uint64_t
naiveGrp(uint64_t value, uint64_t control)
{
    uint64_t lo = 0, hi = 0;
    unsigned nlo = 0, nhi = 0;
    for (unsigned i = 0; i < 64; i++) {
        uint64_t bit = (value >> i) & 1;
        if ((control >> i) & 1)
            hi |= bit << nhi++;
        else
            lo |= bit << nlo++;
    }
    return lo | (hi << nlo);
}

TEST(Grp, ZeroControlIsIdentity)
{
    EXPECT_EQ(runGrp(0xDEADBEEFCAFEF00Dull, 0),
              0xDEADBEEFCAFEF00Dull);
}

TEST(Grp, AllOnesControlIsIdentity)
{
    EXPECT_EQ(runGrp(0xDEADBEEFCAFEF00Dull, ~0ull),
              0xDEADBEEFCAFEF00Dull);
}

TEST(Grp, SplitsHalves)
{
    // Control selects the odd bits: even-position bits pack low,
    // odd-position bits pack high.
    uint64_t v = 0xAAAAAAAAAAAAAAAAull; // all odd positions set
    uint64_t got = runGrp(v, 0xAAAAAAAAAAAAAAAAull);
    EXPECT_EQ(got, 0xFFFFFFFF00000000ull);
}

TEST(Grp, MatchesNaiveOnRandomInputs)
{
    Xorshift64 rng(31337);
    for (int i = 0; i < 200; i++) {
        uint64_t v = rng.next();
        uint64_t c = rng.next();
        ASSERT_EQ(runGrp(v, c), naiveGrp(v, c));
    }
}

TEST(Grp, PreservesPopcount)
{
    Xorshift64 rng(77);
    for (int i = 0; i < 50; i++) {
        uint64_t v = rng.next(), c = rng.next();
        EXPECT_EQ(__builtin_popcountll(runGrp(v, c)),
                  __builtin_popcountll(v));
    }
}

TEST(Grp, SixStepsRealizeArbitraryPermutation)
{
    // Stable LSB-first radix partition on destination indices: the
    // construction the OptimizedGrp 3DES kernel uses, checked here on
    // random permutations end to end.
    Xorshift64 rng(4242);
    for (int trial = 0; trial < 10; trial++) {
        std::array<unsigned, 64> dest_of{};
        for (unsigned i = 0; i < 64; i++)
            dest_of[i] = i;
        for (unsigned i = 63; i > 0; i--)
            std::swap(dest_of[i], dest_of[rng.next() % (i + 1)]);

        // Derive controls.
        std::array<unsigned, 64> labels{};
        for (unsigned p = 0; p < 64; p++)
            labels[p] = p;
        std::array<uint64_t, 6> controls{};
        for (unsigned k = 0; k < 6; k++) {
            std::vector<unsigned> lows, highs;
            for (unsigned p = 0; p < 64; p++) {
                if ((dest_of[labels[p]] >> k) & 1) {
                    controls[k] |= 1ull << p;
                    highs.push_back(labels[p]);
                } else {
                    lows.push_back(labels[p]);
                }
            }
            unsigned p = 0;
            for (unsigned s : lows)
                labels[p++] = s;
            for (unsigned s : highs)
                labels[p++] = s;
        }

        uint64_t value = rng.next();
        uint64_t expect = 0;
        for (unsigned s = 0; s < 64; s++)
            expect |= ((value >> s) & 1) << dest_of[s];

        uint64_t x = value;
        for (unsigned k = 0; k < 6; k++)
            x = naiveGrp(x, controls[k]);
        ASSERT_EQ(x, expect) << "trial " << trial;

        // And through the machine.
        Machine m;
        m.setReg(r1, value);
        Assembler a;
        for (unsigned k = 0; k < 6; k++) {
            Reg ctrl{static_cast<uint8_t>(10 + k)};
            m.setReg(ctrl, controls[k]);
            a.grp(k == 0 ? r1 : r0, ctrl, r0);
        }
        a.halt();
        m.run(a.finalize());
        EXPECT_EQ(m.reg(r0), expect);
    }
}

} // namespace
